//! Shared fixtures and workloads for the Ode benchmark suite.
//!
//! Every bench target under `benches/` regenerates one experiment from
//! EXPERIMENTS.md (F1, E1–E9). The fixtures here mirror the paper's §4
//! credit-card example so the measured code paths are the ones the paper
//! talks about.

use bytes::BytesMut;
use ode_core::{
    ClassBuilder, CouplingMode, Database, Decode, Encode, OdeObject, Perpetual, PersistentPtr,
    TxnId,
};
use ode_events::ast::Alphabet;
use ode_events::event::EventId;

/// The paper's CredCard, reduced to the fields the triggers consult.
#[derive(Debug, Clone)]
pub struct CredCard {
    /// Credit limit.
    pub cred_lim: f32,
    /// Current balance.
    pub curr_bal: f32,
}

impl Encode for CredCard {
    fn encode(&self, buf: &mut BytesMut) {
        self.cred_lim.encode(buf);
        self.curr_bal.encode(buf);
    }
}
impl Decode for CredCard {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(CredCard {
            cred_lim: f32::decode(buf)?,
            curr_bal: f32::decode(buf)?,
        })
    }
}
impl OdeObject for CredCard {
    const CLASS: &'static str = "CredCard";
}

/// How much trigger machinery the registered CredCard class carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CardSetup {
    /// No events declared at all (a plain persistent class).
    NoEvents,
    /// Events declared, but no trigger will be activated.
    EventsOnly,
    /// Events + the paper's AutoRaiseLimit-style trigger defined.
    WithTrigger,
}

/// Register the CredCard class in `db` with the requested amount of
/// machinery.
pub fn register_cred_card(db: &Database, setup: CardSetup) {
    let builder = ClassBuilder::new("CredCard");
    let builder = match setup {
        CardSetup::NoEvents => builder,
        CardSetup::EventsOnly => builder
            .after_event("Buy")
            .after_event("PayBill")
            .user_event("BigBuy"),
        CardSetup::WithTrigger => builder
            .after_event("Buy")
            .after_event("PayBill")
            .user_event("BigBuy")
            .mask("MoreCred", |ctx| {
                let c: CredCard = ctx.object()?;
                Ok(c.curr_bal > 0.8 * c.cred_lim)
            })
            .trigger(
                "AutoRaiseLimit",
                "relative((after Buy & MoreCred()), after PayBill)",
                CouplingMode::Immediate,
                Perpetual::Yes,
                |_| Ok(()),
            ),
    };
    let td = builder.build(db.registry()).expect("class builds");
    db.register_class(&td).expect("class registers");
}

/// Create a card; optionally activate `n_triggers` AutoRaiseLimit
/// instances on it.
pub fn new_card(db: &Database, n_triggers: usize) -> PersistentPtr<CredCard> {
    db.with_txn(|txn| {
        let card = db.pnew(
            txn,
            &CredCard {
                cred_lim: 1_000_000.0,
                curr_bal: 0.0,
            },
        )?;
        for _ in 0..n_triggers {
            db.activate(txn, card, "AutoRaiseLimit", &100.0f32)?;
        }
        Ok(card)
    })
    .expect("card created")
}

/// One Buy through the wrapper-function path.
pub fn buy(db: &Database, txn: TxnId, card: PersistentPtr<CredCard>, amount: f32) {
    db.invoke(txn, card, "Buy", |c: &mut CredCard| {
        c.curr_bal += amount;
        Ok(())
    })
    .expect("buy succeeds");
}

/// Dump the database's metrics snapshot to stderr alongside the bench
/// timings — only the counters that actually moved, one `ode_*` line
/// each (Prometheus exposition names). Set `ODE_BENCH_STATS=0` to
/// silence, or `ODE_BENCH_STATS=full` for the complete exposition with
/// HELP/TYPE headers.
pub fn dump_stats(label: &str, db: &Database) {
    let mode = std::env::var("ODE_BENCH_STATS").unwrap_or_default();
    if mode == "0" {
        return;
    }
    let stats = db.stats();
    let rendered = stats.render_prometheus();
    eprintln!("--- metrics: {label} ---");
    if mode == "full" {
        eprint!("{rendered}");
    } else {
        for line in rendered.lines() {
            if line.starts_with('#') || line.ends_with(" 0") || line.contains("_bucket{") {
                continue;
            }
            eprintln!("{line}");
        }
    }
    // Latency percentiles, so perf drift is visible straight from CI
    // logs without parsing the bucket series.
    for (name, h) in [
        ("lock_wait_micros", stats.lock_wait_micros),
        ("commit_flush_wait_micros", stats.commit_flush_wait_micros),
        ("fsync_micros", stats.fsync_micros),
        ("post_micros", stats.post_micros),
        ("action_micros", stats.action_micros),
    ] {
        if h.count == 0 {
            continue;
        }
        eprintln!(
            "ode_{name}: count={} p50={}us p99={}us max={}us",
            h.count,
            h.p50(),
            h.p99(),
            h.max
        );
    }
}

/// The CredCard alphabet in eventRep order (§5.2), for pure-FSM benches.
pub fn cred_card_alphabet() -> Alphabet {
    let mut al = Alphabet::new();
    al.add_event(EventId(0), "BigBuy");
    al.add_event(EventId(1), "after PayBill");
    al.add_event(EventId(2), "after Buy");
    al.add_mask("MoreCred");
    al
}

/// A synthetic alphabet of `n` events named `e0..e{n-1}` plus `m` masks.
pub fn synthetic_alphabet(n: u32, masks: u16) -> Alphabet {
    let mut al = Alphabet::new();
    for i in 0..n {
        al.add_event(EventId(i), &format!("e{i}"));
    }
    for i in 0..masks {
        al.add_mask(&format!("m{i}"));
    }
    al
}

/// A chain expression `e0, e1, …, e{k-1}` (sequence of length k) over the
/// synthetic alphabet — detection cost scales with its machine size.
pub fn chain_expression(k: u32) -> String {
    (0..k)
        .map(|i| format!("e{i}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// A deterministic pseudo-random event stream over ids `0..n`.
pub fn event_stream(len: usize, n: u32, seed: u64) -> Vec<EventId> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            EventId((state % n as u64) as u32)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_work() {
        let db = Database::volatile();
        register_cred_card(&db, CardSetup::WithTrigger);
        let card = new_card(&db, 1);
        db.with_txn(|txn| {
            buy(&db, txn, card, 10.0);
            Ok(())
        })
        .unwrap();
        assert_eq!(db.trigger_stats().fsm_advances, 1);
    }

    #[test]
    fn stream_is_deterministic() {
        assert_eq!(event_stream(16, 3, 42), event_stream(16, 3, 42));
        assert_ne!(event_stream(16, 3, 42), event_stream(16, 3, 43));
        assert!(event_stream(100, 3, 1).iter().all(|e| e.0 < 3));
    }

    #[test]
    fn chain_expression_parses() {
        let al = synthetic_alphabet(8, 0);
        let te = ode_events::parser::parse(&chain_expression(8), &al).unwrap();
        let dfa = ode_events::dfa::Dfa::compile(&te, &al);
        assert!(dfa.len() >= 8);
    }
}
