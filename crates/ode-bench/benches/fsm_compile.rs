//! F1 — Figure 1 reproduction + FSM compilation cost.
//!
//! Prints the compiled AutoRaiseLimit machine (compare with the paper's
//! Figure 1) and measures what the paper's chosen strategy pays: "we can
//! therefore compile the state machines every time we compile an O++
//! program … we chose to compile an FSM every time" (§5.1.3). Compilation
//! must therefore be cheap; this bench quantifies it for the paper's two
//! triggers and for growing synthetic expressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ode_bench::{chain_expression, cred_card_alphabet, synthetic_alphabet};
use ode_events::dfa::Dfa;
use ode_events::parser::parse;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
}

fn bench_figure1(c: &mut Criterion) {
    let al = cred_card_alphabet();
    let src = "relative((after Buy & MoreCred()), after PayBill)";
    let te = parse(src, &al).unwrap();
    let fsm = Dfa::compile(&te, &al);
    println!("\n=== Figure 1: FSM for {src} ===");
    println!("{}", fsm.render(&al));
    assert_eq!(fsm.len(), 4, "must be the paper's 4-state machine");

    let mut group = c.benchmark_group("fsm_compile");
    group.bench_function("AutoRaiseLimit(Figure1)", |b| {
        b.iter(|| {
            let te = parse(src, &al).unwrap();
            Dfa::compile(&te, &al)
        })
    });
    group.bench_function("DenyCredit", |b| {
        let mut al = cred_card_alphabet();
        al.add_mask("OverLimit");
        b.iter(|| {
            let te = parse("after Buy & OverLimit()", &al).unwrap();
            Dfa::compile(&te, &al)
        })
    });
    group.finish();
}

fn bench_compile_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fsm_compile_scaling");
    for k in [2u32, 4, 8, 16] {
        let al = synthetic_alphabet(k, 0);
        let src = chain_expression(k);
        group.bench_with_input(BenchmarkId::new("chain", k), &k, |b, _| {
            b.iter(|| {
                let te = parse(&src, &al).unwrap();
                Dfa::compile(&te, &al)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_figure1, bench_compile_scaling
}
criterion_main!(benches);
