//! Substrate ablation: the persistent hash index (§5.1.3's structure for
//! the object→triggers map) vs the B+-tree (disk-Ode's ordered index,
//! §5.6) on the operations the trigger run-time and applications perform.
//!
//! Expected shape: point operations favour the hash index (it is why the
//! paper hashes the trigger map); only the B+-tree can answer range
//! queries at all.

use criterion::{criterion_group, criterion_main, Criterion};
use ode_storage::btree::{u64_key, BTree};
use ode_storage::hashindex::HashIndex;
use ode_storage::{Oid, Storage};
use std::hint::black_box;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
}

const KEYS: u64 = 2_000;

fn bench_index_structures(c: &mut Criterion) {
    let storage = Storage::volatile();
    let txn = storage.begin().unwrap();
    let cluster = storage.create_cluster(txn).unwrap();
    let hash = HashIndex::create(&storage, txn, cluster).unwrap();
    let tree = BTree::create(&storage, txn, cluster).unwrap();
    for k in 0..KEYS {
        hash.insert(&storage, txn, k, Oid::from_u64(k)).unwrap();
        tree.insert(&storage, txn, &u64_key(k), Oid::from_u64(k))
            .unwrap();
    }

    let mut group = c.benchmark_group("index_structures");
    let mut i = 0u64;
    group.bench_function("hash_point_lookup", |b| {
        b.iter(|| {
            i = (i + 7) % KEYS;
            black_box(hash.get(&storage, txn, i).unwrap())
        })
    });
    let mut i = 0u64;
    group.bench_function("btree_point_lookup", |b| {
        b.iter(|| {
            i = (i + 7) % KEYS;
            black_box(tree.get(&storage, txn, &u64_key(i)).unwrap())
        })
    });
    let mut i = KEYS;
    group.bench_function("hash_insert", |b| {
        b.iter(|| {
            i += 1;
            hash.insert(&storage, txn, i, Oid::from_u64(i)).unwrap()
        })
    });
    let mut i = 10 * KEYS;
    group.bench_function("btree_insert", |b| {
        b.iter(|| {
            i += 1;
            tree.insert(&storage, txn, &u64_key(i), Oid::from_u64(i))
                .unwrap()
        })
    });
    let mut i = 0u64;
    group.bench_function("btree_range_100", |b| {
        b.iter(|| {
            i = (i + 13) % (KEYS - 100);
            black_box(
                tree.range(&storage, txn, Some(&u64_key(i)), Some(&u64_key(i + 100)))
                    .unwrap()
                    .len(),
            )
        })
    });
    group.finish();
    storage.commit(txn).unwrap();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_index_structures
}
criterion_main!(benches);
