//! E17 — what the wire costs: embedded posting vs `ode-server` round
//! trips.
//!
//! The embedded baseline calls `Session::execute` directly (same
//! statement path, no sockets); the wire series drives a real
//! `ode-server` over loopback TCP with 1, 4, and 16 concurrent client
//! connections, each running `CALL <card> Buy …` statements that post
//! events through the Figure 1 machinery (DenyCredit armed but
//! quiescent: every Buy advances an FSM).
//!
//! One measured iteration is one batch of `clients × BATCH` statements;
//! the reported Kelem/s is statements per second. Expected shape: the
//! wire costs a fixed per-statement round-trip (syscalls + framing) —
//! large relative to an in-process post (~µs) — and concurrent
//! connections claw throughput back by pipelining server work, until
//! they saturate the machine's cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ode_core::Engine;
use ode_server::Server;
use ode_testutil::WireClient;
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

/// Statements per client per measured iteration.
const BATCH: usize = 64;

const TOKEN: &str = "bench";

const SCHEMA: &[&str] = &[
    "CREATE CLASS CredCard { \
        FIELD cred_lim = 1000000; FIELD curr_bal = 0; FIELD good_hist = 1; \
        EVENT AFTER Buy; EVENT AFTER PayBill; \
        MASK OverLimit WHEN curr_bal > cred_lim; }",
    "CREATE TRIGGER DenyCredit ON CredCard PERPETUAL \
        WHEN after Buy & OverLimit() \
        COUPLING immediate DO ABORT 'Over Limit'",
];

/// Set up `bank` with one card + armed trigger per client; returns the
/// card oids.
fn setup(session_exec: &mut dyn FnMut(&str) -> String, clients: usize) -> Vec<String> {
    session_exec("CREATE DATABASE bank");
    session_exec("USE bank");
    for stmt in SCHEMA {
        session_exec(stmt);
    }
    (0..clients)
        .map(|_| {
            let card = session_exec("NEW CredCard");
            session_exec(&format!("ACTIVATE DenyCredit ON {card}"));
            card
        })
        .collect()
}

fn bench_embedded(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_wire");
    let engine = Engine::volatile();
    let mut session = engine.session();
    let cards = setup(&mut |stmt| session.execute(stmt).expect(stmt), 1);
    let stmt = format!("CALL {} Buy SET curr_bal = curr_bal + 1", cards[0]);
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("embedded_post", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                session.execute(&stmt).expect("embedded call");
            }
        })
    });
    // The same statements with session tracing on: every execute builds
    // the full span tree (statement/parse/post/fsm_advance) in the
    // session ring. The untraced series above is the tracing-off
    // baseline for E18's ≤5% overhead bar.
    session.execute("TRACE ON").expect("trace on");
    group.bench_function("embedded_post_tracing_on", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                session.execute(&stmt).expect("embedded call");
            }
        })
    });
    session.execute("TRACE OFF").expect("trace off");
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_wire");
    for clients in [1usize, 4, 16] {
        let engine = Engine::volatile();
        let server = Server::start(engine, "127.0.0.1:0", TOKEN).expect("bind");
        let addr = server.addr().to_string();
        let mut admin = WireClient::connect(&addr, TOKEN).expect("connect");
        let cards = setup(&mut |stmt| admin.exec(stmt), clients);

        // One long-lived connection per client, parked on barriers.
        let start = Arc::new(Barrier::new(clients + 1));
        let done = Arc::new(Barrier::new(clients + 1));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let workers: Vec<_> = cards
            .iter()
            .map(|card| {
                let addr = addr.clone();
                let stmt = format!("CALL {card} Buy SET curr_bal = curr_bal + 1");
                let (start, done, stop) = (start.clone(), done.clone(), stop.clone());
                std::thread::spawn(move || {
                    let mut client = WireClient::connect(&addr, TOKEN).expect("connect");
                    client.exec("USE bank");
                    loop {
                        start.wait();
                        if stop.load(std::sync::atomic::Ordering::SeqCst) {
                            return;
                        }
                        for _ in 0..BATCH {
                            client.exec(&stmt);
                        }
                        done.wait();
                    }
                })
            })
            .collect();

        group.throughput(Throughput::Elements((clients * BATCH) as u64));
        group.bench_function(BenchmarkId::new("wire_post", clients), |b| {
            b.iter(|| {
                start.wait();
                done.wait();
            })
        });

        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        start.wait();
        for w in workers {
            w.join().unwrap();
        }
        server.shutdown();
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_embedded, bench_wire
}
criterion_main!(benches);
