//! E17/E19 — what the wire costs, and what batching buys back:
//! embedded posting vs `ode-server` round trips vs protocol-v2
//! pipelining.
//!
//! The embedded baseline calls `Session::execute` directly (same
//! statement path, no sockets); the wire series drives a real
//! `ode-server` over loopback TCP with 1, 4, and 16 concurrent client
//! connections, each running `CALL <card> Buy …` statements that post
//! events through the Figure 1 machinery (DenyCredit armed but
//! quiescent: every Buy advances an FSM).
//!
//! One measured iteration is one batch of `clients × BATCH` statements;
//! the reported Kelem/s is statements per second. Expected shape: the
//! wire costs a fixed per-statement round-trip (syscalls + framing) —
//! large relative to an in-process post (~µs) — and concurrent
//! connections claw throughput back by pipelining server work, until
//! they saturate the machine's cores.
//!
//! The protocol-v2 series (E19) measure each amortization layer
//! separately:
//!
//! * `wire_post_pipelined/{1,4,16}` — the same workload with all
//!   `BATCH` statements of an iteration in ONE batch frame: one
//!   round-trip per 64 statements instead of 64.
//! * `wire_post_prepared` vs `wire_post_nocache` — per-round-trip v1
//!   statements with the parse amortized away (`EXECUTE` of a
//!   `PREPARE`d statement) vs the server's transparent statement cache
//!   disabled (`--no-stmt-cache`): brackets what parsing costs on the
//!   wire path.
//! * `wire_post_fsync_{piggyback,solo}/{4,16}` — a durable (fsync-on)
//!   engine, where commit latency dominates: with piggybacking,
//!   concurrent sessions' durability waits ride one WAL group-commit
//!   flush; `solo` is the paired `--no-piggyback` baseline. The
//!   `ode_piggybacked_commits` / `ode_wal_group_commits` counters are
//!   printed after each run.
//!
//! `ODE_E17_QUICK=1` skips criterion and runs the CI smoke payload
//! instead: it *asserts* (not eyeballs) that a `WireClient`'s steady
//! state allocates nothing on the client thread (scratch-buffer reuse,
//! for both single-statement and batch frames), that batch replies are
//! correct, and that concurrent fsync-on commits actually piggyback
//! (`piggybacked_commits > 0`, fewer WAL group commits than statements
//! committed).

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use ode_core::Engine;
use ode_server::{Server, ServerOptions};
use ode_storage::StorageOptions;
use ode_testutil::{TempDir, WireClient};
use std::sync::{Arc, Barrier};
use std::time::Duration;

// ---------------------------------------------------------------------
// Thread-local allocation counting (quick-mode zero-alloc assertions)
// ---------------------------------------------------------------------

/// A `System` wrapper that counts allocations per thread, so the quick
/// smoke can assert the *client* thread's steady state allocates
/// nothing while the in-process server threads allocate freely.
struct CountingAlloc;

thread_local! {
    static THREAD_ALLOCS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { std::alloc::System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { std::alloc::System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

/// Statements per client per measured iteration (also the batch-frame
/// size of the pipelined series).
const BATCH: usize = 64;

const TOKEN: &str = "bench";

const SCHEMA: &[&str] = &[
    "CREATE CLASS CredCard { \
        FIELD cred_lim = 1000000; FIELD curr_bal = 0; FIELD good_hist = 1; \
        EVENT AFTER Buy; EVENT AFTER PayBill; \
        MASK OverLimit WHEN curr_bal > cred_lim; }",
    "CREATE TRIGGER DenyCredit ON CredCard PERPETUAL \
        WHEN after Buy & OverLimit() \
        COUPLING immediate DO ABORT 'Over Limit'",
];

/// Set up `bank` with one card + armed trigger per client; returns the
/// card oids.
fn setup(session_exec: &mut dyn FnMut(&str) -> String, clients: usize) -> Vec<String> {
    session_exec("CREATE DATABASE bank");
    session_exec("USE bank");
    for stmt in SCHEMA {
        session_exec(stmt);
    }
    (0..clients)
        .map(|_| {
            let card = session_exec("NEW CredCard");
            session_exec(&format!("ACTIVATE DenyCredit ON {card}"));
            card
        })
        .collect()
}

fn bench_embedded(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_wire");
    let engine = Engine::volatile();
    let mut session = engine.session();
    let cards = setup(&mut |stmt| session.execute(stmt).expect(stmt), 1);
    let stmt = format!("CALL {} Buy SET curr_bal = curr_bal + 1", cards[0]);
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("embedded_post", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                session.execute(&stmt).expect("embedded call");
            }
        })
    });
    // The same statements with session tracing on: every execute builds
    // the full span tree (statement/parse/post/fsm_advance) in the
    // session ring. The untraced series above is the tracing-off
    // baseline for E18's ≤5% overhead bar.
    session.execute("TRACE ON").expect("trace on");
    group.bench_function("embedded_post_tracing_on", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                session.execute(&stmt).expect("embedded call");
            }
        })
    });
    session.execute("TRACE OFF").expect("trace off");
    group.finish();
}

/// The shared worker harness: one long-lived connection per client,
/// parked on barriers; each `start.wait()`/`done.wait()` pair brackets
/// one iteration of `per_round` on every client concurrently.
fn with_wire_workers(
    c: &mut Criterion,
    engine: Arc<Engine>,
    options: ServerOptions,
    clients: usize,
    series: &str,
    per_round: impl Fn(&mut WireClient, &str) + Send + Sync + Clone + 'static,
) {
    let mut group = c.benchmark_group("server_wire");
    let server = Server::start_with(engine, "127.0.0.1:0", TOKEN, options).expect("bind");
    let addr = server.addr().to_string();
    let mut admin = WireClient::connect(&addr, TOKEN).expect("connect");
    let cards = setup(&mut |stmt| admin.exec(stmt), clients);

    let start = Arc::new(Barrier::new(clients + 1));
    let done = Arc::new(Barrier::new(clients + 1));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let workers: Vec<_> = cards
        .iter()
        .map(|card| {
            let addr = addr.clone();
            let stmt = format!("CALL {card} Buy SET curr_bal = curr_bal + 1");
            let (start, done, stop) = (start.clone(), done.clone(), stop.clone());
            let per_round = per_round.clone();
            std::thread::spawn(move || {
                let mut client = WireClient::connect(&addr, TOKEN).expect("connect");
                client.exec("USE bank");
                loop {
                    start.wait();
                    if stop.load(std::sync::atomic::Ordering::SeqCst) {
                        return;
                    }
                    per_round(&mut client, &stmt);
                    done.wait();
                }
            })
        })
        .collect();

    group.throughput(Throughput::Elements((clients * BATCH) as u64));
    group.bench_function(BenchmarkId::new(series, clients), |b| {
        b.iter(|| {
            start.wait();
            done.wait();
        })
    });

    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    start.wait();
    for w in workers {
        w.join().unwrap();
    }
    server.shutdown();
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    for clients in [1usize, 4, 16] {
        with_wire_workers(
            c,
            Engine::volatile(),
            ServerOptions::default(),
            clients,
            "wire_post",
            |client, stmt| {
                for _ in 0..BATCH {
                    client.exec(stmt);
                }
            },
        );
    }
}

fn bench_wire_pipelined(c: &mut Criterion) {
    for clients in [1usize, 4, 16] {
        with_wire_workers(
            c,
            Engine::volatile(),
            ServerOptions::default(),
            clients,
            "wire_post_pipelined",
            |client, stmt| {
                let stmts: Vec<&str> = vec![stmt; BATCH];
                let replies = client.exec_batch(&stmts, false).expect("batch");
                assert!(replies.iter().all(|r| r == "OK"), "{replies:?}");
            },
        );
    }
}

/// Bracket the wire cost of parsing: `EXECUTE` of a prepared statement
/// (parse amortized to zero) vs the transparent statement cache turned
/// off (every frame re-parses). Single connection — this isolates
/// per-statement CPU, not concurrency.
fn bench_wire_prepared(c: &mut Criterion) {
    let run = |c: &mut Criterion, series: &str, options: ServerOptions, prepare: bool| {
        let mut group = c.benchmark_group("server_wire");
        let server =
            Server::start_with(Engine::volatile(), "127.0.0.1:0", TOKEN, options).expect("bind");
        let addr = server.addr().to_string();
        let mut client = WireClient::connect(&addr, TOKEN).expect("connect");
        let cards = setup(&mut |stmt| client.exec(stmt), 1);
        let stmt = if prepare {
            client.exec(&format!(
                "PREPARE buy AS CALL {} Buy SET curr_bal = curr_bal + $1",
                cards[0]
            ));
            "EXECUTE buy WITH 1".to_string()
        } else {
            format!("CALL {} Buy SET curr_bal = curr_bal + 1", cards[0])
        };
        let mut out = String::new();
        group.throughput(Throughput::Elements(BATCH as u64));
        group.bench_function(series, |b| {
            b.iter(|| {
                for _ in 0..BATCH {
                    client.exec_into(&stmt, &mut out).expect("wire call");
                }
            })
        });
        server.shutdown();
        group.finish();
    };
    run(c, "wire_post_prepared", ServerOptions::default(), true);
    run(
        c,
        "wire_post_nocache",
        ServerOptions {
            stmt_cache: false,
            ..ServerOptions::default()
        },
        false,
    );
}

/// A durable fsync-on engine rooted at `dir`.
fn durable_engine(dir: &TempDir) -> Arc<Engine> {
    Engine::open(
        dir.path(),
        StorageOptions {
            fsync: true,
            ..StorageOptions::default()
        },
    )
    .expect("open durable engine")
}

/// Commit-bound wire throughput (fsync on): piggybacking vs the
/// per-statement `--no-piggyback` baseline at 4 and 16 connections.
fn bench_wire_piggyback(c: &mut Criterion) {
    for clients in [4usize, 16] {
        for (series, piggyback) in [
            ("wire_post_fsync_piggyback", true),
            ("wire_post_fsync_solo", false),
        ] {
            let dir = TempDir::new("e19");
            let engine = durable_engine(&dir);
            with_wire_workers(
                c,
                Arc::clone(&engine),
                ServerOptions {
                    piggyback,
                    ..ServerOptions::default()
                },
                clients,
                series,
                |client, stmt| {
                    for _ in 0..BATCH {
                        client.exec(stmt);
                    }
                },
            );
            let db = engine.database("bank").expect("bank");
            let snapshot = db.metrics().snapshot();
            println!(
                "{series}/{clients}: piggybacked_commits={} wal_group_commits={} \
                 wal_group_size_sum={}",
                db.metrics().piggybacked_commits.get(),
                snapshot.wal_group_commits,
                snapshot.wal_group_size_sum,
            );
        }
    }
}

// ---------------------------------------------------------------------
// Quick smoke (CI): correctness + zero-alloc assertions, no criterion
// ---------------------------------------------------------------------

fn quick_smoke() {
    // --- scratch-buffer reuse: v1 and batch steady state allocate
    // nothing on the client thread ---
    let server = Server::start(Engine::volatile(), "127.0.0.1:0", TOKEN).expect("bind");
    let addr = server.addr().to_string();
    let mut client = WireClient::connect(&addr, TOKEN).expect("connect");
    let cards = setup(&mut |stmt| client.exec(stmt), 1);
    let stmt = format!("CALL {} Buy SET curr_bal = curr_bal + 1", cards[0]);
    let mut out = String::new();

    // Warm the scratch buffers (first frames grow them), then measure.
    for _ in 0..8 {
        client.exec_into(&stmt, &mut out).expect("warm-up call");
    }
    let before = thread_allocs();
    for _ in 0..BATCH {
        client
            .exec_into(&stmt, &mut out)
            .expect("steady-state call");
    }
    let v1_allocs = thread_allocs() - before;
    assert_eq!(
        v1_allocs, 0,
        "steady-state exec_into must reuse the client scratch buffers"
    );

    let stmts: Vec<&str> = vec![stmt.as_str(); BATCH];
    let mut replies = Vec::new();
    for _ in 0..4 {
        client.send_batch(&stmts, false).expect("warm-up batch");
        client
            .read_batch_reply_into(&mut replies)
            .expect("warm-up batch reply");
    }
    let before = thread_allocs();
    for _ in 0..4 {
        client
            .send_batch(&stmts, false)
            .expect("steady-state batch");
        client
            .read_batch_reply_into(&mut replies)
            .expect("steady-state batch reply");
    }
    let batch_allocs = thread_allocs() - before;
    assert_eq!(
        batch_allocs, 0,
        "steady-state batch round trips must reuse scratch + reply buffers"
    );
    assert_eq!(replies.len(), BATCH);
    assert!(replies.iter().all(|r| r == "OK"), "{replies:?}");
    server.shutdown();

    // --- cross-session piggybacking under fsync: concurrent commits
    // share WAL flushes ---
    let dir = TempDir::new("e17-quick");
    let engine = durable_engine(&dir);
    let server =
        Server::start(Arc::clone(&engine), "127.0.0.1:0", TOKEN).expect("bind durable server");
    let addr = server.addr().to_string();
    let clients = 4usize;
    let per_client = 64usize;
    let mut admin = WireClient::connect(&addr, TOKEN).expect("connect");
    let cards = setup(&mut |stmt| admin.exec(stmt), clients);
    let go = Arc::new(Barrier::new(clients));
    let workers: Vec<_> = cards
        .iter()
        .map(|card| {
            let addr = addr.clone();
            let stmt = format!("CALL {card} Buy SET curr_bal = curr_bal + 1");
            let go = go.clone();
            std::thread::spawn(move || {
                let mut client = WireClient::connect(&addr, TOKEN).expect("connect");
                client.exec("USE bank");
                go.wait();
                for _ in 0..per_client {
                    client.exec(&stmt);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let db = engine.database("bank").expect("bank");
    let piggybacked = db.metrics().piggybacked_commits.get();
    let group_commits = db.metrics().snapshot().wal_group_commits;
    let statements = (clients * per_client) as u64;
    assert!(
        piggybacked > 0,
        "concurrent fsync-on commits must piggyback (got 0 of {statements})"
    );
    assert!(
        group_commits < statements,
        "piggybacked commits must share WAL flushes: \
         {group_commits} group commits for {statements} statements"
    );
    println!(
        "quick smoke OK: v1_allocs=0 batch_allocs=0 \
         piggybacked_commits={piggybacked} wal_group_commits={group_commits} \
         statements={statements}"
    );
    server.shutdown();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_embedded, bench_wire, bench_wire_pipelined,
              bench_wire_prepared, bench_wire_piggyback
}

fn main() {
    // `cargo bench` passes harness flags (`--bench`); ignore argv.
    if std::env::var("ODE_E17_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        quick_smoke();
        return;
    }
    benches();
}
