//! E8 — Ode vs MM-Ode (§5.6): the same trigger workload on the EOS-like
//! disk engine and the Dali-like main-memory engine, sharing the identical
//! object-manager run-time.
//!
//! Workload: one transaction = Buy (arming AutoRaiseLimit's mask path) +
//! PayBill on a rotating set of cards, triggers active. Expected shape:
//! memory ≥ disk, with the gap set by buffer-pool and WAL overheads (the
//! engines share locking and trigger processing).

use criterion::{criterion_group, criterion_main, Criterion};
use ode_bench::{new_card, register_cred_card, CardSetup, CredCard};
use ode_core::{Database, EngineKind, PersistentPtr, StorageOptions};
use ode_testutil::TempDir;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

const CARDS: usize = 32;

struct World {
    _dir: Option<TempDir>,
    db: Database,
    cards: Vec<PersistentPtr<CredCard>>,
}

fn world(engine: Option<EngineKind>) -> World {
    world_with_pool(engine, 256)
}

fn world_with_pool(engine: Option<EngineKind>, buffer_pages: usize) -> World {
    let (dir, db) = match engine {
        None => (None, Database::volatile()),
        Some(engine) => {
            let dir = TempDir::new("bench-engine");
            let db = Database::create(
                dir.path(),
                StorageOptions {
                    engine,
                    buffer_pages,
                    ..StorageOptions::default()
                },
            )
            .unwrap();
            (Some(dir), db)
        }
    };
    register_cred_card(&db, CardSetup::WithTrigger);
    let cards = (0..CARDS).map(|_| new_card(&db, 1)).collect();
    World {
        _dir: dir,
        db,
        cards,
    }
}

fn one_txn(w: &World, i: usize) {
    let card = w.cards[i % CARDS];
    w.db.with_txn(|txn| {
        w.db.invoke(txn, card, "Buy", |c: &mut CredCard| {
            c.curr_bal += 5.0;
            Ok(())
        })?;
        w.db.invoke(txn, card, "PayBill", |c: &mut CredCard| {
            c.curr_bal -= 5.0;
            Ok(())
        })
    })
    .unwrap();
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("disk_vs_mm");
    for (label, engine) in [
        ("disk_eos_like", Some(EngineKind::Disk)),
        ("memory_dali_like", Some(EngineKind::Memory)),
        ("memory_volatile", None),
    ] {
        let w = world(engine);
        let mut i = 0usize;
        group.bench_function(label, |b| {
            b.iter(|| {
                one_txn(&w, i);
                i += 1;
            })
        });
    }

    // A warm buffer pool with lazy checkpoints hides the disk entirely;
    // force frequent checkpoints (write-back of every dirty page every 16
    // commits) to expose the I/O the disk engine pays and MM-Ode avoids.
    {
        let dir = TempDir::new("bench-engine");
        let db = Database::create(
            dir.path(),
            StorageOptions {
                engine: EngineKind::Disk,
                buffer_pages: 4,
                checkpoint_every: 16,
                ..StorageOptions::default()
            },
        )
        .unwrap();
        ode_bench::register_cred_card(&db, CardSetup::WithTrigger);
        let cards: Vec<_> = (0..CARDS).map(|_| ode_bench::new_card(&db, 1)).collect();
        let w = World {
            _dir: Some(dir),
            db,
            cards,
        };
        let mut i = 0usize;
        group.bench_function("disk_eos_like_checkpoint_pressure", |b| {
            b.iter(|| {
                one_txn(&w, i);
                i += 1;
            })
        });
        if let Some(stats) = w.db.storage().pool_stats() {
            println!(
                "  [disk_checkpoint_pressure] pool hits={} misses={} resident={}",
                stats.hits, stats.misses, stats.resident
            );
        }
        ode_bench::dump_stats("disk_vs_mm/disk_checkpoint_pressure", &w.db);
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_engines
}
criterion_main!(benches);
