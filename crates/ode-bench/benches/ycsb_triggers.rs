//! E10 — the first larger-than-RAM trigger workload: a YCSB-A-style
//! read/update mix over padded rows, each carrying an armed per-object
//! trigger, with the working set sized at a multiple of the buffer-pool
//! capacity so the steal path (dirty eviction behind the WAL flush gate)
//! and the fuzzy checkpointer both run under load.
//!
//! Hand-rolled harness (not criterion): the headline numbers are
//! per-commit latency percentiles — p50/p99/max with a background fuzzy
//! checkpointer versus periodic quiesced checkpoints — plus steady-state
//! WAL size and the bounded-residency invariant, none of which criterion
//! can report.
//!
//! Modes:
//!
//! * default — full sweep: throughput at working-set/pool ratios
//!   0.5×/2×/8×, then the quiesced-vs-fuzzy stall comparison. Prints a
//!   summary table; `BENCH_ycsb_triggers.json` records a run.
//! * `ODE_YCSB_QUICK=1` — the CI `larger-than-ram-smoke` payload: one
//!   small larger-than-RAM run with *assertions* (completion, resident
//!   pages ≤ pool capacity, steals observed, WAL truncated under
//!   traffic and bounded well below total bytes appended).

use bytes::BytesMut;
use ode_core::{
    ClassBuilder, CouplingMode, Database, Decode, Encode, OdeObject, Perpetual, PersistentPtr,
    StorageOptions,
};
use ode_testutil::TempDir;
use std::time::{Duration, Instant};

/// Payload padding per row: ~1 KiB so only a few rows share a 4 KiB page
/// and a few thousand rows dwarf a ~100-page pool.
const PAD: usize = 1024;
/// Rows that fit a page, net of cell/slot overhead.
const ROWS_PER_PAGE: usize = 3;

#[derive(Debug, Clone)]
struct Row {
    pad: Vec<u8>,
    version: u64,
}

impl Row {
    fn new(seed: u8) -> Row {
        Row {
            pad: vec![seed; PAD],
            version: 0,
        }
    }
}

impl Encode for Row {
    fn encode(&self, buf: &mut BytesMut) {
        self.pad.encode(buf);
        self.version.encode(buf);
    }
}
impl Decode for Row {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(Row {
            pad: Vec::<u8>::decode(buf)?,
            version: u64::decode(buf)?,
        })
    }
}
impl OdeObject for Row {
    const CLASS: &'static str = "YcsbRow";
}

/// Deterministic MMIX LCG so the key sequence needs no rand crate.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xBEEF))
    }
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 17
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

struct World {
    _dir: TempDir,
    db: Database,
    rows: Vec<PersistentPtr<Row>>,
}

/// Create a disk database with the given pool size, register `YcsbRow`
/// with an `after Update` trigger, and load `n_rows` rows each with the
/// trigger armed.
fn world(buffer_pages: usize, n_rows: usize, checkpoint_interval: Option<Duration>) -> World {
    let dir = TempDir::new("ycsb-triggers");
    let db = Database::create(
        dir.path(),
        StorageOptions {
            buffer_pages,
            checkpoint_interval,
            ..StorageOptions::default()
        },
    )
    .unwrap();
    let td = ClassBuilder::new("YcsbRow")
        .after_event("Update")
        .trigger(
            "OnUpdate",
            "after Update",
            CouplingMode::Immediate,
            Perpetual::Yes,
            |_| Ok(()),
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
    let mut rows = Vec::with_capacity(n_rows);
    for chunk in 0..n_rows.div_ceil(64) {
        db.with_txn(|txn| {
            for i in 0..64.min(n_rows - chunk * 64) {
                let row = db.pnew(txn, &Row::new((chunk * 64 + i) as u8))?;
                db.activate(txn, row, "OnUpdate", &0u32)?;
                rows.push(row);
            }
            Ok(())
        })
        .unwrap();
    }
    World {
        _dir: dir,
        db,
        rows,
    }
}

/// How the run checkpoints: never, the historical stop-the-world path
/// every `n` commits, or the background fuzzy thread (already spawned by
/// `checkpoint_interval` in `world`).
enum Checkpointing {
    None,
    QuiescedEvery(usize),
    Fuzzy,
}

struct RunStats {
    elapsed: Duration,
    ops: usize,
    /// Per-*update-commit* latencies, sorted ascending.
    latencies: Vec<Duration>,
    /// Foreground stop-the-world pauses: the duration of each in-loop
    /// quiesced checkpoint, during which no commit can run. Empty for
    /// fuzzy runs — the background checkpointer never blocks the loop.
    stalls: Vec<Duration>,
    wal_max: u64,
    wal_final: u64,
    wal_appended: u64,
}

impl RunStats {
    fn pct(&self, p: f64) -> Duration {
        let idx = ((self.latencies.len() as f64 - 1.0) * p) as usize;
        self.latencies[idx]
    }
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// Run `ops` operations of a 50/50 read/update mix over uniformly random
/// rows (YCSB-A), each update committing its own transaction and firing
/// the armed `OnUpdate` trigger.
fn run_mix(w: &World, ops: usize, ckpt: Checkpointing, seed: u64) -> RunStats {
    let mut rng = Lcg::new(seed);
    let mut latencies = Vec::with_capacity(ops);
    let mut stalls = Vec::new();
    let storage = w.db.storage();
    let wal_start = storage.wal_flushed_lsn().unwrap_or(0);
    let mut wal_max = 0u64;
    let started = Instant::now();
    for op in 0..ops {
        let row = w.rows[rng.below(w.rows.len() as u64) as usize];
        let t0 = Instant::now();
        if rng.below(2) == 0 {
            w.db.with_txn(|txn| w.db.read(txn, row).map(|_| ()))
                .unwrap();
        } else {
            w.db.with_txn(|txn| {
                w.db.invoke(txn, row, "Update", |r: &mut Row| {
                    r.version += 1;
                    Ok(())
                })
            })
            .unwrap();
            latencies.push(t0.elapsed());
        }
        if let Checkpointing::QuiescedEvery(n) = ckpt {
            if op % n == n - 1 {
                let c0 = Instant::now();
                storage.checkpoint().unwrap();
                stalls.push(c0.elapsed());
            }
        }
        if op % 64 == 0 {
            wal_max = wal_max.max(storage.wal_file_len().unwrap_or(0));
        }
    }
    let elapsed = started.elapsed();
    wal_max = wal_max.max(storage.wal_file_len().unwrap_or(0));
    latencies.sort_unstable();
    stalls.sort_unstable();
    RunStats {
        elapsed,
        ops,
        latencies,
        stalls,
        wal_max,
        wal_final: storage.wal_file_len().unwrap_or(0),
        wal_appended: storage.wal_flushed_lsn().unwrap_or(0) - wal_start,
    }
}

fn print_run(label: &str, w: &World, s: &RunStats) {
    let pool = w.db.storage().pool_stats().unwrap();
    let cap = w.db.storage().pool_capacity().unwrap();
    println!(
        "  {label}: {:.0} ops/s  commit p50={:?} p99={:?} max={:?}",
        s.ops_per_sec(),
        s.pct(0.50),
        s.pct(0.99),
        s.latencies.last().copied().unwrap_or_default(),
    );
    println!(
        "    pool resident={}/{cap} steals={} evictions={}  wal max={}B final={}B appended={}B",
        pool.resident, pool.steals, pool.evictions, s.wal_max, s.wal_final, s.wal_appended
    );
    if !s.stalls.is_empty() {
        let idx = |p: f64| s.stalls[((s.stalls.len() as f64 - 1.0) * p) as usize];
        println!(
            "    stop-the-world stalls: {} pauses p50={:?} p99={:?} max={:?}",
            s.stalls.len(),
            idx(0.50),
            idx(0.99),
            s.stalls.last().copied().unwrap_or_default()
        );
    }
}

/// Throughput at working-set/pool-capacity ratios: below RAM, 2× RAM,
/// 8× RAM. The pool is fixed; the row count scales.
fn sweep_ratios() {
    const POOL: usize = 96;
    println!("working-set/pool-capacity sweep (pool = {POOL} pages, no checkpoints):");
    for ratio in [0.5f64, 2.0, 8.0] {
        let rows = ((POOL as f64 * ratio) as usize * ROWS_PER_PAGE).max(8);
        let w = world(POOL, rows, None);
        let stats = run_mix(&w, 4_000, Checkpointing::None, 42);
        let cap = w.db.storage().pool_capacity().unwrap();
        let pool = w.db.storage().pool_stats().unwrap();
        assert!(
            pool.resident <= cap,
            "resident {} exceeds capacity {cap}",
            pool.resident
        );
        print_run(&format!("ratio {ratio}x ({rows} rows)"), &w, &stats);
        w.db.close().unwrap();
    }
}

/// The headline: identical larger-than-RAM workload, checkpointed the
/// old way (stop-the-world every 256 commits) versus the fuzzy
/// background thread — commit p99 is the stall signal, WAL max is the
/// bounded-log signal.
fn stall_comparison() {
    const POOL: usize = 96;
    const RATIO: usize = 4;
    const OPS: usize = 8_000;
    let rows = POOL * RATIO * ROWS_PER_PAGE;
    println!("checkpoint stall comparison ({rows} rows, {RATIO}x pool, {OPS} ops):");

    let w = world(POOL, rows, None);
    let quiesced = run_mix(&w, OPS, Checkpointing::QuiescedEvery(256), 7);
    print_run("quiesced/256", &w, &quiesced);
    w.db.close().unwrap();

    let w = world(POOL, rows, Some(Duration::from_millis(50)));
    let fuzzy = run_mix(&w, OPS, Checkpointing::Fuzzy, 7);
    print_run("fuzzy/50ms", &w, &fuzzy);
    let checkpoints = w.db.storage().metrics().snapshot().checkpoints;
    println!("    fuzzy checkpoints taken: {checkpoints}");
    w.db.close().unwrap();

    let stall_p99 = quiesced.stalls[((quiesced.stalls.len() as f64 - 1.0) * 0.99) as usize];
    println!(
        "  headline: quiesced stop-the-world stall p99={stall_p99:?} vs fuzzy 0 \
         (commit p99 quiesced={:?} fuzzy={:?}); wal-max quiesced={}B fuzzy={}B",
        quiesced.pct(0.99),
        fuzzy.pct(0.99),
        quiesced.wal_max,
        fuzzy.wal_max
    );
}

/// CI smoke: a small larger-than-RAM run whose invariants are asserted,
/// not eyeballed. Working set ≥ 4× pool capacity; the fuzzy checkpointer
/// cycles throughout.
fn quick_smoke() {
    const POOL: usize = 32;
    let w = world(
        POOL,
        POOL * 4 * ROWS_PER_PAGE,
        Some(Duration::from_millis(20)),
    );
    let cap = w.db.storage().pool_capacity().unwrap();
    assert!(
        w.rows.len() >= 4 * cap * ROWS_PER_PAGE,
        "working set must be >= 4x pool capacity"
    );
    let stats = run_mix(&w, 3_000, Checkpointing::Fuzzy, 1);
    print_run("quick smoke (4x pool, fuzzy/20ms)", &w, &stats);

    let pool = w.db.storage().pool_stats().unwrap();
    assert!(
        pool.resident <= cap,
        "resident pages {} exceed pool capacity {cap}",
        pool.resident
    );
    assert!(
        pool.steals > 0,
        "a 4x working set must overflow the pool through the steal path"
    );
    let snap = w.db.storage().metrics().snapshot();
    assert!(
        snap.checkpoints >= 2,
        "the background checkpointer should have cycled, got {}",
        snap.checkpoints
    );
    assert!(
        snap.wal_truncated_bytes > 0,
        "fuzzy checkpoints must truncate the WAL under traffic"
    );
    // Bounded log: the high-water mark stays well below total bytes
    // appended — the log is being recycled, not accreted.
    assert!(
        stats.wal_max < stats.wal_appended / 2,
        "wal high-water {}B not bounded vs {}B appended",
        stats.wal_max,
        stats.wal_appended
    );
    w.db.close().unwrap();
    println!("quick smoke OK");
}

fn main() {
    // `cargo bench` passes harness flags (`--bench`); ignore argv.
    if std::env::var("ODE_YCSB_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        quick_smoke();
        return;
    }
    sweep_ratios();
    stall_comparison();
}
