//! E5 — cost of the four coupling modes (§4.2, §5.5).
//!
//! The same trigger (fires on every `after Buy`) is attached with each
//! coupling mode; the measured unit is one complete transaction containing
//! one Buy, *including* any system transactions the mode requires — so
//! `dependent`/`!dependent` pay for an extra transaction, and `end` pays
//! for commit-time list processing.

use criterion::{criterion_group, criterion_main, Criterion};
use ode_bench::CredCard;
use ode_core::{ClassBuilder, CouplingMode, Database, Perpetual};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
}

fn db_with_coupling(coupling: CouplingMode) -> (Database, ode_core::PersistentPtr<CredCard>) {
    let db = Database::volatile();
    let td = ClassBuilder::new("CredCard")
        .after_event("Buy")
        .trigger("OnBuy", "after Buy", coupling, Perpetual::Yes, |_| Ok(()))
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
    let card = db
        .with_txn(|txn| {
            let card = db.pnew(
                txn,
                &CredCard {
                    cred_lim: 1.0,
                    curr_bal: 0.0,
                },
            )?;
            db.activate(txn, card, "OnBuy", &())?;
            Ok(card)
        })
        .unwrap();
    (db, card)
}

fn bench_coupling(c: &mut Criterion) {
    let mut group = c.benchmark_group("coupling_modes");

    // Baseline: the same transaction with no trigger at all.
    {
        let db = Database::volatile();
        let td = ClassBuilder::new("CredCard")
            .after_event("Buy")
            .build(db.registry())
            .unwrap();
        db.register_class(&td).unwrap();
        let card = db
            .with_txn(|txn| {
                db.pnew(
                    txn,
                    &CredCard {
                        cred_lim: 1.0,
                        curr_bal: 0.0,
                    },
                )
            })
            .unwrap();
        group.bench_function("no_trigger", |b| {
            b.iter(|| {
                db.with_txn(|txn| {
                    db.invoke(txn, card, "Buy", |c: &mut CredCard| {
                        c.curr_bal += 1.0;
                        Ok(())
                    })
                })
                .unwrap()
            })
        });
    }

    for (label, coupling) in [
        ("immediate", CouplingMode::Immediate),
        ("end", CouplingMode::End),
        ("dependent", CouplingMode::Dependent),
        ("independent", CouplingMode::Independent),
    ] {
        let (db, card) = db_with_coupling(coupling);
        group.bench_function(label, |b| {
            b.iter(|| {
                db.with_txn(|txn| {
                    db.invoke(txn, card, "Buy", |c: &mut CredCard| {
                        c.curr_bal += 1.0;
                        Ok(())
                    })
                })
                .unwrap()
            })
        });
        let stats = db.trigger_stats();
        println!(
            "  [{label}] immediate_firings={} deferred_firings={}",
            stats.immediate_firings, stats.deferred_firings
        );
        ode_bench::dump_stats(&format!("coupling_modes/{label}"), &db);
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_coupling
}
criterion_main!(benches);
