//! E9 — §8's local rules: "they are low cost … no persistent storage is
//! required for such triggers … such triggers never require obtaining
//! write locks for the purpose of processing trigger events."
//!
//! The same trigger pattern is driven as (a) a persistent trigger and (b)
//! a local rule; the measured unit is one event posting inside an open
//! transaction. The printed lock counters confirm the no-write-lock claim.

use criterion::{criterion_group, criterion_main, Criterion};
use ode_bench::CredCard;
use ode_core::{ClassBuilder, CouplingMode, Database, Perpetual};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
}

fn setup() -> (Database, ode_core::PersistentPtr<CredCard>) {
    let db = Database::volatile();
    let td = ClassBuilder::new("CredCard")
        .after_event("Buy")
        .user_event("BigBuy")
        .trigger(
            // Toggles on each posting (arm on Buy, complete on BigBuy) so
            // the persistent variant really writes its state every time.
            "Watch",
            "after Buy, BigBuy",
            CouplingMode::Immediate,
            Perpetual::Yes,
            |_| Ok(()),
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
    let card = db
        .with_txn(|txn| {
            db.pnew(
                txn,
                &CredCard {
                    cred_lim: 1.0,
                    curr_bal: 0.0,
                },
            )
        })
        .unwrap();
    (db, card)
}

fn bench_local_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_rules");

    // (a) Persistent trigger.
    {
        let (db, card) = setup();
        db.with_txn(|txn| {
            db.activate(txn, card, "Watch", &())?;
            Ok(())
        })
        .unwrap();
        let txn = db.begin().unwrap();
        db.storage().reset_lock_stats();
        group.bench_function("persistent_trigger", |b| {
            b.iter(|| {
                db.invoke(txn, card, "Buy", |_c: &mut CredCard| Ok(()))
                    .unwrap();
                db.post_user_event(txn, card, "BigBuy").unwrap();
            })
        });
        let stats = db.storage().lock_stats();
        println!(
            "  [persistent] lock upgrades={} immediate_grants={}",
            stats.upgrades, stats.immediate_grants
        );
        db.abort(txn).unwrap();
        ode_bench::dump_stats("local_rules/persistent_trigger", &db);
    }

    // (b) Local rule: transient state, no locks for trigger processing.
    {
        let (db, card) = setup();
        let txn = db.begin().unwrap();
        db.activate_local(txn, card, "Watch", &()).unwrap();
        db.storage().reset_lock_stats();
        group.bench_function("local_rule", |b| {
            b.iter(|| {
                db.invoke(txn, card, "Buy", |_c: &mut CredCard| Ok(()))
                    .unwrap();
                db.post_user_event(txn, card, "BigBuy").unwrap();
            })
        });
        let stats = db.storage().lock_stats();
        println!(
            "  [local] lock upgrades={} immediate_grants={}",
            stats.upgrades, stats.immediate_grants
        );
        assert_eq!(
            stats.upgrades, 0,
            "local rules must not take write locks for trigger processing"
        );
        db.abort(txn).unwrap();
        ode_bench::dump_stats("local_rules/local_rule", &db);
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_local_rules
}
criterion_main!(benches);
