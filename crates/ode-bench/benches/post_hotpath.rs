//! The posting hot path (§5.4.5), isolated: `post_event` against an
//! object with active triggers, steady state.
//!
//! Two workloads, each at 1 and 16 trigger instances per object:
//!
//!   perpetual/{1,16}  — a perpetual `relative(TickA, TickB)` trigger in a
//!                       long-lived transaction; every iteration posts the
//!                       A,B pair so each instance's FSM state toggles on
//!                       every event and the trigger fires once per pair.
//!                       This is the §6 read-becomes-write steady state.
//!   once_only/{1,16}  — a once-only chain of 64 `TickA`s; every iteration
//!                       is a fresh transaction posting 16 events and then
//!                       aborting, so each instance advances 16 times and
//!                       rolls back. This exercises per-transaction state
//!                       handling (decode, advance, write-back, undo).
//!
//! Throughput is reported in events posted (elements/sec). Numbers before
//! and after the hot-path overhaul live in BENCH_post_hotpath.json; see
//! EXPERIMENTS.md for how to regenerate them.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ode_bench::dump_stats;
use ode_core::{
    ClassBuilder, CouplingMode, Database, Decode, Encode, OdeObject, Perpetual, PersistentPtr,
};
use std::time::Duration;

#[derive(Debug, Clone)]
struct Probe {
    n: i64,
}
impl Encode for Probe {
    fn encode(&self, buf: &mut BytesMut) {
        self.n.encode(buf);
    }
}
impl Decode for Probe {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(Probe {
            n: i64::decode(buf)?,
        })
    }
}
impl OdeObject for Probe {
    const CLASS: &'static str = "Probe";
}

/// Length of the once-only chain expression — long enough that 16 posted
/// events per transaction never complete it, so no firing/deactivation
/// noise enters the once-only series.
const CHAIN_LEN: usize = 64;

/// Events posted per once-only iteration (one transaction).
const ONCE_POSTS: usize = 16;

fn setup(perpetual: bool, n_triggers: usize) -> (Database, PersistentPtr<Probe>, &'static str) {
    let db = Database::volatile();
    let builder = ClassBuilder::new("Probe")
        .user_event("TickA")
        .user_event("TickB");
    let (builder, trigger) = if perpetual {
        (
            builder.trigger(
                "Pulse",
                "relative(TickA, TickB)",
                CouplingMode::Immediate,
                Perpetual::Yes,
                |_| Ok(()),
            ),
            "Pulse",
        )
    } else {
        let expr = vec!["TickA"; CHAIN_LEN].join(", ");
        (
            builder.trigger(
                "Chain",
                &expr,
                CouplingMode::Immediate,
                Perpetual::No,
                |_| Ok(()),
            ),
            "Chain",
        )
    };
    let td = builder.build(db.registry()).expect("class builds");
    db.register_class(&td).expect("class registers");
    let probe = db
        .with_txn(|txn| {
            let p = db.pnew(txn, &Probe { n: 0 })?;
            for _ in 0..n_triggers {
                db.activate(txn, p, trigger, &())?;
            }
            Ok(p)
        })
        .expect("probe created");
    (db, probe, trigger)
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
}

fn bench_post_hotpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("post_hotpath");

    // Steady state: each iteration posts TickA then TickB inside one
    // long-lived transaction; every instance's state toggles per event.
    // Measured twice: flight recorder on (the shipping default) and off,
    // to keep the recorder's overhead honest (EXPERIMENTS.md E14 requires
    // recorder-on within 5% of recorder-off).
    for n in [1usize, 16] {
        for (recorder, flight) in [("recorder_on", true), ("recorder_off", false)] {
            group.throughput(Throughput::Elements(2));
            let (db, probe, _) = setup(true, n);
            db.metrics().set_flight_enabled(flight);
            group.bench_function(format!("perpetual/{n}/{recorder}"), |b| {
                db.metrics().reset();
                let txn = db.begin().unwrap();
                b.iter(|| {
                    db.post_user_event(txn, probe, "TickA").unwrap();
                    db.post_user_event(txn, probe, "TickB").unwrap();
                });
                db.abort(txn).unwrap();
                dump_stats(&format!("post_hotpath/perpetual/{n}/{recorder}"), &db);
            });
        }
    }

    // Span tracing (PR 9): the same steady state with an ambient trace
    // context installed, so every post records Post/FsmAdvance spans
    // into the session ring. The shipping default is tracing OFF — the
    // recorder_on series above doubles as the tracing-off baseline
    // (spans compiled in, ambient flag cold) — and E18 requires the
    // traced series within reason and the OFF series within 5% of the
    // pre-instrumentation numbers in BENCH_post_hotpath.json.
    for n in [1usize, 16] {
        group.throughput(Throughput::Elements(2));
        let (db, probe, _) = setup(true, n);
        group.bench_function(format!("perpetual/{n}/tracing_on"), |b| {
            db.metrics().reset();
            let buf = std::sync::Arc::new(ode_trace::TraceBuffer::new());
            let _guard =
                ode_trace::install(std::sync::Arc::clone(&buf), ode_trace::next_trace_id());
            let txn = db.begin().unwrap();
            b.iter(|| {
                db.post_user_event(txn, probe, "TickA").unwrap();
                db.post_user_event(txn, probe, "TickB").unwrap();
            });
            db.abort(txn).unwrap();
            dump_stats(&format!("post_hotpath/perpetual/{n}/tracing_on"), &db);
        });
    }

    // Once-only chains: a fresh transaction per iteration posts 16 events
    // (the chain never completes) and aborts, rolling the advances back.
    for n in [1usize, 16] {
        group.throughput(Throughput::Elements(ONCE_POSTS as u64));
        let (db, probe, _) = setup(false, n);
        group.bench_function(format!("once_only/{n}"), |b| {
            db.metrics().reset();
            b.iter(|| {
                let txn = db.begin().unwrap();
                for _ in 0..ONCE_POSTS {
                    db.post_user_event(txn, probe, "TickA").unwrap();
                }
                db.abort(txn).unwrap();
            });
            dump_stats(&format!("post_hotpath/once_only/{n}"), &db);
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_post_hotpath
}
criterion_main!(benches);
