//! E15 — scaling the concurrency core (striped locks, partitioned
//! buffer pool, sharded allocator + page store, striped transaction
//! table) under a *contended* mixed read/post workload.
//!
//! Threads are split into contention groups around shared trigger-armed
//! anchors: two poster threads per group advance the same perpetual
//! `relative(TickA, TickB)` trigger (the §6 read-becomes-write steady
//! state — their S→X upgrades on the shared trigger descriptor conflict,
//! wait, and occasionally deadlock, exactly the amplification the paper
//! reports), while reader threads run short shared-read transactions
//! against the group anchors. `sharded` runs the default stripe/shard
//! counts; `single` forces `shards = 1` and `lock_stripes = 1`, which
//! reproduces the previous process-wide-mutex engine.
//!
//! What separates the two modes is *wait-queue isolation*: with one
//! stripe, every commit's release broadcast (`notify_all`) wakes every
//! blocked transaction in the system — each frequent reader commit drags
//! all parked posters through a futile wake/recheck/sleep cycle — and all
//! lock, page, and allocator traffic funnels through single mutexes.
//! Striping wakes only the stripe that actually freed a lock. Deadlock
//! victims are retried by the harness (counted and printed), the same
//! policy a real client would use.
//!
//! One measured iteration is one round of `threads × BATCH` *committed*
//! transactions. Per-stripe/shard contention counters are printed after
//! each config so a stripe-count regression is visible in CI logs without
//! artifacts. The disk engine runs with `fsync: false` so the WAL write
//! path does not mask the core (fsync amortization is E13's subject).
//!
//! `read_heavy` (see [`bench_read_heavy`]) is the MVCC counterpart: 14
//! snapshot readers and 2 posters, plus a pure-reader round that asserts
//! snapshot readers produce zero lock-manager traffic.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ode_core::{
    ClassBuilder, CouplingMode, Database, Decode, Encode, EngineKind, OdeError, OdeObject,
    Perpetual, PersistentPtr, StorageOptions,
};
use ode_storage::StorageError;
use ode_testutil::TempDir;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;
use std::time::Duration;

#[derive(Debug, Clone)]
struct Probe {
    n: i64,
}
impl Encode for Probe {
    fn encode(&self, buf: &mut BytesMut) {
        self.n.encode(buf);
    }
}
impl Decode for Probe {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(Probe {
            n: i64::decode(buf)?,
        })
    }
}
impl OdeObject for Probe {
    const CLASS: &'static str = "Probe";
}

/// Committed transactions per thread per measured iteration.
const BATCH: u64 = 32;

/// Poster threads sharing one armed anchor (the contention unit).
const POSTERS_PER_GROUP: usize = 2;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
}

fn options(engine: EngineKind, sharded: bool) -> StorageOptions {
    let defaults = StorageOptions::default();
    StorageOptions {
        engine,
        fsync: false,
        shards: if sharded { defaults.shards } else { 1 },
        lock_stripes: if sharded { defaults.lock_stripes } else { 1 },
        ..defaults
    }
}

fn is_deadlock(e: &OdeError) -> bool {
    matches!(e, OdeError::Storage(StorageError::Deadlock(_)))
}

/// Worker threads parked on a start barrier: readers run `BATCH`
/// shared-read transactions per round against their group's anchor,
/// posters run `BATCH` posting transactions (TickA + TickB = one firing
/// of the group's shared trigger), retrying deadlock victims.
struct Rig {
    _dir: Option<TempDir>,
    db: Arc<Database>,
    start: Arc<Barrier>,
    done: Arc<Barrier>,
    stop: Arc<AtomicBool>,
    retries: Arc<AtomicU64>,
    handles: Vec<JoinHandle<()>>,
}

impl Rig {
    fn new(engine: EngineKind, sharded: bool, threads: usize) -> Rig {
        let readers = threads / 2;
        Rig::with_mix(engine, sharded, readers, threads - readers, false)
    }

    /// Explicit reader/poster split. `snapshot_readers` switches the
    /// reader threads from short 2PL shared-read transactions to MVCC
    /// `with_read_txn` snapshots (which never enter the lock manager and
    /// never deadlock, so they run unretried).
    fn with_mix(
        engine: EngineKind,
        sharded: bool,
        readers: usize,
        posters: usize,
        snapshot_readers: bool,
    ) -> Rig {
        let threads = readers + posters;
        let (dir, db) = match engine {
            EngineKind::Memory => (None, Database::volatile_with(options(engine, sharded))),
            EngineKind::Disk => {
                let dir = TempDir::new("bench-concurrency-core");
                let db = Database::create(dir.path(), options(engine, sharded)).unwrap();
                (Some(dir), db)
            }
        };
        let db = Arc::new(db);
        let td = ClassBuilder::new("Probe")
            .user_event("TickA")
            .user_event("TickB")
            .trigger(
                "Pulse",
                "relative(TickA, TickB)",
                CouplingMode::Immediate,
                Perpetual::Yes,
                |_| Ok(()),
            )
            .build(db.registry())
            .unwrap();
        db.register_class(&td).unwrap();

        // One armed anchor per contention group, allocated in separate
        // transactions so the sharded allocator spreads them over pages.
        let groups = posters.div_ceil(POSTERS_PER_GROUP).max(1);
        let anchors: Vec<PersistentPtr<Probe>> = (0..groups)
            .map(|g| {
                db.with_txn(|txn| {
                    let p = db.pnew(txn, &Probe { n: g as i64 })?;
                    db.activate(txn, p, "Pulse", &())?;
                    Ok(p)
                })
                .unwrap()
            })
            .collect();

        let start = Arc::new(Barrier::new(threads + 1));
        let done = Arc::new(Barrier::new(threads + 1));
        let stop = Arc::new(AtomicBool::new(false));
        let retries = Arc::new(AtomicU64::new(0));
        let handles = (0..threads)
            .map(|t| {
                let db = Arc::clone(&db);
                let start = Arc::clone(&start);
                let done = Arc::clone(&done);
                let stop = Arc::clone(&stop);
                let retries = Arc::clone(&retries);
                let is_reader = t < readers;
                let anchor = anchors[t % anchors.len()];
                std::thread::spawn(move || loop {
                    start.wait();
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    let mut committed = 0;
                    while committed < BATCH {
                        let result = if is_reader && snapshot_readers {
                            db.with_read_txn(|txn| db.read(txn, anchor).map(|_| ()))
                        } else {
                            db.with_txn(|txn| {
                                if is_reader {
                                    db.read(txn, anchor).map(|_| ())
                                } else {
                                    db.post_user_event(txn, anchor, "TickA")?;
                                    db.post_user_event(txn, anchor, "TickB")
                                }
                            })
                        };
                        match result {
                            Ok(()) => committed += 1,
                            Err(e) if is_deadlock(&e) => {
                                retries.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("bench txn failed: {e:?}"),
                        }
                    }
                    done.wait();
                })
            })
            .collect();
        Rig {
            _dir: dir,
            db,
            start,
            done,
            stop,
            retries,
            handles,
        }
    }

    /// Release one round and wait for every thread to finish it.
    fn round(&self) {
        self.start.wait();
        self.done.wait();
    }
}

impl Drop for Rig {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.start.wait();
        for h in self.handles.drain(..) {
            h.join().unwrap();
        }
    }
}

fn bench_concurrency_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrency_core");
    for (engine_name, engine) in [("mem", EngineKind::Memory), ("disk", EngineKind::Disk)] {
        for (mode, sharded) in [("sharded", true), ("single", false)] {
            for threads in [1usize, 4, 16] {
                let rig = Rig::new(engine, sharded, threads);
                group.throughput(Throughput::Elements(threads as u64 * BATCH));
                group.bench_function(
                    BenchmarkId::new(format!("{engine_name}/{mode}"), threads),
                    |b| b.iter(|| rig.round()),
                );
                let snap = rig.db.metrics().snapshot();
                println!(
                    "  [{engine_name}/{mode}/{threads}] commits={} deadlock_retries={} \
                     stripe_contention: lock={} buf={} alloc={} txn={} \
                     acquire_p50={}ns p99={}ns lock_waits={} upgrades={} \
                     wait_p99={}us",
                    snap.txn_commits,
                    rig.retries.load(Ordering::Relaxed),
                    snap.lock_stripe_contention,
                    snap.buf_shard_contention,
                    snap.alloc_shard_contention,
                    snap.txn_stripe_contention,
                    snap.shard_acquire_nanos.p50(),
                    snap.shard_acquire_nanos.p99(),
                    snap.lock_shared_waits + snap.lock_exclusive_waits,
                    snap.lock_upgrades,
                    snap.lock_wait_micros.p99(),
                );
            }
        }
    }
    group.finish();
}

/// E15 addendum — the reader-heavy contended smoke: 14 MVCC snapshot
/// readers race 2 posters (one contention group) at 16 threads, the §6
/// "read-mostly workload over armed triggers" shape. Snapshot readers
/// never enter the lock manager, so reader throughput no longer rides
/// the posters' S→X convoy. A pure-reader round afterwards *asserts*
/// the zero-lock claim — CI fails if snapshot reads regress into lock
/// traffic, no artifact inspection needed.
fn bench_read_heavy(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrency_core");
    // Same 14/2 mix, 2PL readers vs snapshot readers: the pair isolates
    // exactly what MVCC buys at a fixed workload shape.
    for (mode, snapshot_readers) in [("read_heavy_2pl", false), ("read_heavy", true)] {
        let rig = Rig::with_mix(EngineKind::Memory, true, 14, 2, snapshot_readers);
        group.throughput(Throughput::Elements(16 * BATCH));
        group.bench_function(BenchmarkId::new(format!("mem/{mode}"), 16), |b| {
            b.iter(|| rig.round())
        });
        let snap = rig.db.metrics().snapshot();
        println!(
            "  [mem/{mode}/16] commits={} snapshot_reads={} deadlock_retries={} \
             lock_waits={} upgrades={} wait_p99={}us",
            snap.txn_commits,
            snap.snapshot_reads,
            rig.retries.load(Ordering::Relaxed),
            snap.lock_shared_waits + snap.lock_exclusive_waits,
            snap.lock_upgrades,
            snap.lock_wait_micros.p99(),
        );
    }
    group.finish();

    // Pure-reader round, asserted: with the trigger still armed, 16
    // snapshot readers generate zero lock-manager traffic of any kind.
    let rig = Rig::with_mix(EngineKind::Memory, true, 16, 0, true);
    rig.db.metrics().reset();
    rig.db.storage().reset_lock_stats();
    rig.round();
    let stats = rig.db.storage().lock_stats();
    let snap = rig.db.metrics().snapshot();
    assert_eq!(
        stats.immediate_grants, 0,
        "snapshot readers entered the lock manager"
    );
    assert_eq!(stats.waits, 0, "snapshot readers waited on locks");
    assert_eq!(stats.deadlocks, 0, "snapshot readers were deadlock victims");
    assert_eq!(stats.upgrades, 0, "snapshot readers performed S→X upgrades");
    assert_eq!(rig.retries.load(Ordering::Relaxed), 0);
    assert!(snap.snapshot_reads >= 16 * BATCH);
    println!(
        "  [mem/pure_readers/16] snapshot_reads={} lock traffic: grants={} \
         waits={} deadlocks={} upgrades={} (asserted zero)",
        snap.snapshot_reads, stats.immediate_grants, stats.waits, stats.deadlocks, stats.upgrades,
    );
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_concurrency_core, bench_read_heavy
}
criterion_main!(benches);
