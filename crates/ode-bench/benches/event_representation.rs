//! E2 — §7's comparison with Sentinel: "Ode's mapping of basic events to
//! globally unique integers is likely to have significantly lower event
//! posting overhead than Sentinel's method of representing an event as a
//! triple of strings: the class name, the member function prototype, and
//! the string 'begin' (before) or 'end' (after)."
//!
//! The measured operation is the hot inner step of event posting: matching
//! a posted event against a transition list / handler table. Series:
//!   int_scan     — sparse transition scan comparing u32 event ids
//!   triple_scan  — the same scan comparing (String, String, String)
//!   int_hash     — HashMap keyed by u32
//!   triple_hash  — HashMap keyed by the string triple (hashing three
//!                  strings per lookup)

use criterion::{criterion_group, criterion_main, Criterion};
use ode_events::event::EventId;
use ode_events::registry::StringTripleEvent;
use std::collections::HashMap;
use std::hint::black_box;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(40)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
}

const TABLE: usize = 24; // transitions/handlers per table

fn triples() -> Vec<StringTripleEvent> {
    (0..TABLE)
        .map(|i| {
            StringTripleEvent::new(
                "CredCard",
                &format!("void MemberFunction{i}(float amount, Date when)"),
                i % 2 == 0,
            )
        })
        .collect()
}

fn bench_representation(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_representation");

    // --- scan over a sparse transition list ---------------------------
    let int_table: Vec<(EventId, u32)> = (0..TABLE as u32).map(|i| (EventId(i), i + 1)).collect();
    let probe_ints: Vec<EventId> = (0..TABLE as u32).map(EventId).collect();
    group.bench_function("int_scan", |b| {
        let mut i = 0;
        b.iter(|| {
            let probe = probe_ints[i % TABLE];
            i += 1;
            black_box(
                int_table
                    .iter()
                    .find(|(e, _)| *e == probe)
                    .map(|(_, to)| *to),
            )
        })
    });

    let triple_table: Vec<(StringTripleEvent, u32)> = triples()
        .into_iter()
        .enumerate()
        .map(|(i, t)| (t, i as u32 + 1))
        .collect();
    let probe_triples = triples();
    group.bench_function("triple_scan", |b| {
        let mut i = 0;
        b.iter(|| {
            let probe = &probe_triples[i % TABLE];
            i += 1;
            black_box(
                triple_table
                    .iter()
                    .find(|(e, _)| e == probe)
                    .map(|(_, to)| *to),
            )
        })
    });

    // --- hash-table lookup --------------------------------------------
    let int_map: HashMap<EventId, u32> = int_table.iter().copied().collect();
    group.bench_function("int_hash", |b| {
        let mut i = 0;
        b.iter(|| {
            let probe = probe_ints[i % TABLE];
            i += 1;
            black_box(int_map.get(&probe).copied())
        })
    });

    let triple_map: HashMap<StringTripleEvent, u32> = triple_table.iter().cloned().collect();
    group.bench_function("triple_hash", |b| {
        let mut i = 0;
        b.iter(|| {
            let probe = &probe_triples[i % TABLE];
            i += 1;
            black_box(triple_map.get(probe).copied())
        })
    });

    // --- the cost of *constructing* the posted event key ---------------
    // Ode posts a pre-assigned integer; Sentinel materialises a triple.
    group.bench_function("int_key_construction", |b| {
        b.iter(|| black_box(EventId(17)))
    });
    group.bench_function("triple_key_construction", |b| {
        b.iter(|| {
            black_box(StringTripleEvent::new(
                "CredCard",
                "void MemberFunction17(float amount, Date when)",
                false,
            ))
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_representation
}
criterion_main!(benches);
