//! E3 — the §6 transition-representation lesson: dense 2-D tables over the
//! global event-id space vs the sparse per-state transition lists the
//! paper settled on.
//!
//! Two quantities:
//! * **memory** (printed, not timed): bytes for the AutoRaiseLimit machine
//!   under both representations as the global registry grows — the dense
//!   table scales with the registry, the sparse one does not;
//! * **advance speed**: events/step on sparse binary-search lists vs dense
//!   direct indexing (the dense table's only advantage).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ode_bench::{cred_card_alphabet, event_stream};
use ode_events::dfa::Dfa;
use ode_events::event::Symbol;
use ode_events::fsm::{sparse_table_bytes, DenseFsm};
use ode_events::parser::parse;
use std::hint::black_box;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
}

fn bench_transition_repr(c: &mut Criterion) {
    let al = cred_card_alphabet();
    let te = parse("relative((after Buy & MoreCred()), after PayBill)", &al).unwrap();
    let dfa = Dfa::compile(&te, &al);

    println!("\n=== E3: transition-table memory (AutoRaiseLimit, 4 states) ===");
    println!("{:>24}  {:>12}", "representation", "bytes");
    println!("{:>24}  {:>12}", "sparse lists", sparse_table_bytes(&dfa));
    for registry_events in [3u32, 64, 1024, 16384] {
        let dense = DenseFsm::from_dfa(&dfa, registry_events, 1);
        println!(
            "{:>24}  {:>12}",
            format!("dense ({registry_events}-event registry)"),
            dense.table_bytes()
        );
    }

    let stream = event_stream(1024, 3, 7);
    let mut group = c.benchmark_group("transition_repr_advance");
    group.throughput(Throughput::Elements(stream.len() as u64));

    group.bench_function("sparse", |b| {
        b.iter(|| {
            let mut state = dfa.start();
            for &e in &stream {
                if let Some(next) = dfa.states()[state as usize].next(Symbol::Event(e)) {
                    state = next;
                }
                // Skip masks: this isolates the transition lookup.
                if let Some(&m) = dfa.states()[state as usize].masks.first() {
                    if let Some(next) = dfa.states()[state as usize].next(Symbol::False(m)) {
                        state = next;
                    }
                }
            }
            black_box(state)
        })
    });

    for registry_events in [3u32, 16384] {
        let dense = DenseFsm::from_dfa(&dfa, registry_events, 1);
        group.bench_with_input(
            BenchmarkId::new("dense", registry_events),
            &registry_events,
            |b, _| {
                b.iter(|| {
                    let mut state = dense.start();
                    for &e in &stream {
                        if let Some(next) = dense.next(state, Symbol::Event(e)) {
                            state = next;
                        }
                        if let Some(&m) = dense.masks(state).first() {
                            if let Some(next) = dense.next(state, Symbol::False(m)) {
                                state = next;
                            }
                        }
                    }
                    black_box(state)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_transition_repr
}
criterion_main!(benches);
