//! E7 — the §5.1.3 design decision: keep trigger state *outside* the
//! object ("storing the current state of the trigger in the object itself
//! would have violated our design goal of maintaining the same object
//! layout … and led to a variety of other problems"), at the price of a
//! hash-index lookup per posting.
//!
//! Two measurements:
//! * **speed**: one event posting under (a) the real design — index lookup
//!   plus separate trigger-state record update — and (b) a simulation of
//!   the rejected design, where the FSM state is a field of the object
//!   itself (no index, but every object of the class carries the field);
//! * **layout stability** (printed): under (a), activating a trigger
//!   leaves the object's stored bytes untouched; under (b) it cannot.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion};
use ode_bench::{buy, new_card, register_cred_card, CardSetup};
use ode_core::{Database, Decode, Encode, OdeObject};
use ode_events::dfa::Dfa;
use ode_events::parser::parse;
use std::hint::black_box;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
}

/// The rejected design, simulated: the object embeds its trigger's FSM
/// state (changing the class layout for *every* object, §3 goal 5).
#[derive(Debug, Clone)]
struct CardWithEmbeddedState {
    cred_lim: f32,
    curr_bal: f32,
    trigger_statenum: u32,
}
impl Encode for CardWithEmbeddedState {
    fn encode(&self, buf: &mut BytesMut) {
        self.cred_lim.encode(buf);
        self.curr_bal.encode(buf);
        self.trigger_statenum.encode(buf);
    }
}
impl Decode for CardWithEmbeddedState {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(CardWithEmbeddedState {
            cred_lim: f32::decode(buf)?,
            curr_bal: f32::decode(buf)?,
            trigger_statenum: u32::decode(buf)?,
        })
    }
}
impl OdeObject for CardWithEmbeddedState {
    const CLASS: &'static str = "CardWithEmbeddedState";
}

fn bench_state_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_placement");

    // (a) The real design: hash index + separate TriggerState record.
    {
        let db = Database::volatile();
        register_cred_card(&db, CardSetup::WithTrigger);
        let card = new_card(&db, 1);
        group.bench_function("state_outside_object", |b| {
            let txn = db.begin().unwrap();
            b.iter(|| buy(&db, txn, card, 1.0));
            db.abort(txn).unwrap();
        });
        ode_bench::dump_stats("state_placement/state_outside_object", &db);
    }

    // (b) The rejected design, simulated: object carries the statenum and
    // every event is a read-advance-write of the object itself.
    {
        let db = Database::volatile();
        let td = ode_core::ClassBuilder::new("CardWithEmbeddedState")
            .build(db.registry())
            .unwrap();
        db.register_class(&td).unwrap();
        let al = ode_bench::cred_card_alphabet();
        let te = parse("relative((after Buy & MoreCred()), after PayBill)", &al).unwrap();
        let fsm = Dfa::compile(&te, &al);
        let buy_event = ode_events::event::EventId(2);
        let card = db
            .with_txn(|txn| {
                db.pnew(
                    txn,
                    &CardWithEmbeddedState {
                        cred_lim: 1_000_000.0,
                        curr_bal: 0.0,
                        trigger_statenum: fsm.start(),
                    },
                )
            })
            .unwrap();
        group.bench_function("state_inside_object", |b| {
            let txn = db.begin().unwrap();
            b.iter(|| {
                db.update_with(txn, card, |c: &mut CardWithEmbeddedState| {
                    c.curr_bal += 1.0;
                    let more_cred = c.curr_bal > 0.8 * c.cred_lim;
                    let out = fsm.post(c.trigger_statenum, buy_event, |_| more_cred);
                    c.trigger_statenum = out.state;
                })
                .unwrap()
            });
            db.abort(txn).unwrap();
        });
    }

    group.finish();

    // Layout-stability demonstration (the decisive argument, §6: in-object
    // state "would have changed object layout and required converting
    // existing data when triggers are added/removed from a class").
    let db = Database::volatile();
    register_cred_card(&db, CardSetup::WithTrigger);
    let card = new_card(&db, 0);
    let bytes_before = db
        .with_txn(|txn| {
            let c = db.read(txn, card)?;
            Ok(ode_storage::codec::encode_to_vec(&c))
        })
        .unwrap();
    db.with_txn(|txn| {
        db.activate(txn, card, "AutoRaiseLimit", &1.0f32)?;
        Ok(())
    })
    .unwrap();
    let bytes_after = db
        .with_txn(|txn| {
            let c = db.read(txn, card)?;
            Ok(ode_storage::codec::encode_to_vec(&c))
        })
        .unwrap();
    println!(
        "\n=== E7: layout stability — object payload {} bytes before activation, {} after (identical: {}) ===",
        bytes_before.len(),
        bytes_after.len(),
        bytes_before == bytes_after
    );
    assert_eq!(bytes_before, bytes_after);
    black_box(bytes_after);
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_state_placement
}
criterion_main!(benches);
