//! E1 — design goals 3 & 4: "the overhead associated with triggers should
//! be paid only by objects of classes with triggers" and "the trigger
//! facilities should not add any overhead to volatile object accesses".
//!
//! Series (per member-function call):
//!   volatile            — a plain Rust method call on the same struct
//!   no_events           — invoke on a class with no declared events
//!   events_no_trigger   — events declared, object has no active triggers
//!                         (the header-flag short circuit, §5.4.5 fn 3)
//!   one_trigger         — one active trigger advances per event
//!   four_triggers       — four active triggers advance per event
//!
//! Expected shape: volatile ≪ everything; no_events ≈ events_no_trigger;
//! cost grows with active-trigger count only.

use criterion::{criterion_group, criterion_main, Criterion};
use ode_bench::{buy, dump_stats, new_card, register_cred_card, CardSetup, CredCard};
use ode_core::Database;
use std::hint::black_box;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
}

fn bench_posting_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("posting_overhead");

    // Volatile: the same "member function", no database in sight.
    group.bench_function("volatile", |b| {
        let mut card = CredCard {
            cred_lim: 1_000_000.0,
            curr_bal: 0.0,
        };
        b.iter(|| {
            card.curr_bal += 1.0;
            black_box(card.curr_bal);
        })
    });

    // Helper: one invoke per iteration inside a long-lived transaction.
    // Each series dumps its metrics snapshot next to the timings.
    let run = |label: &'static str, setup: CardSetup, n_triggers: usize| {
        let db = Database::volatile();
        register_cred_card(&db, setup);
        let card = new_card(&db, n_triggers);
        move |b: &mut criterion::Bencher| {
            db.metrics().reset();
            let txn = db.begin().unwrap();
            b.iter(|| buy(&db, txn, card, 1.0));
            db.abort(txn).unwrap();
            dump_stats(&format!("posting_overhead/{label}"), &db);
        }
    };

    group.bench_function("no_events", run("no_events", CardSetup::NoEvents, 0));
    group.bench_function(
        "events_no_trigger",
        run("events_no_trigger", CardSetup::WithTrigger, 0),
    );
    group.bench_function("one_trigger", run("one_trigger", CardSetup::WithTrigger, 1));
    group.bench_function(
        "four_triggers",
        run("four_triggers", CardSetup::WithTrigger, 4),
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_posting_overhead
}
criterion_main!(benches);
