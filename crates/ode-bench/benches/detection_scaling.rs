//! E6 — design goal 2: "detection of composite events should be
//! efficient."
//!
//! With compiled DFAs, posting one event costs one transition lookup (plus
//! mask evaluations where pending) — independent of how long the event
//! history is, and only weakly dependent on expression size (binary search
//! in a per-state sparse list). This bench drives streams of 1024 events
//! through machines compiled from sequence expressions of growing length
//! and alphabets of growing width; throughput per event should stay near
//! constant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ode_bench::{chain_expression, event_stream, synthetic_alphabet};
use ode_events::dfa::Dfa;
use ode_events::parser::parse;
use std::hint::black_box;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
}

const STREAM: usize = 1024;

fn bench_expression_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("detection_vs_expression_size");
    group.throughput(Throughput::Elements(STREAM as u64));
    for k in [2u32, 4, 8, 16, 32] {
        let al = synthetic_alphabet(k.max(4), 0);
        let te = parse(&chain_expression(k), &al).unwrap();
        let dfa = Dfa::compile(&te, &al);
        let stream = event_stream(STREAM, k.max(4), 99);
        group.bench_with_input(BenchmarkId::new("chain", k), &k, |b, _| {
            b.iter(|| {
                let mut state = dfa.start();
                let mut fired = 0u32;
                for &e in &stream {
                    let out = dfa.post(state, e, |_| false);
                    state = out.state;
                    fired += out.accepted as u32;
                }
                black_box((state, fired))
            })
        });
    }
    group.finish();
}

fn bench_alphabet_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("detection_vs_alphabet_width");
    group.throughput(Throughput::Elements(STREAM as u64));
    for n in [4u32, 16, 64, 256] {
        let al = synthetic_alphabet(n, 0);
        // Fixed pattern length, growing alphabet: each state carries ~n
        // transitions (the *any wrapper), stressing per-state lookup.
        let te = parse(&chain_expression(4), &al).unwrap();
        let dfa = Dfa::compile(&te, &al);
        let stream = event_stream(STREAM, n, 5);
        group.bench_with_input(BenchmarkId::new("alphabet", n), &n, |b, _| {
            b.iter(|| {
                let mut state = dfa.start();
                for &e in &stream {
                    state = dfa.post(state, e, |_| false).state;
                }
                black_box(state)
            })
        });
    }
    group.finish();
}

fn bench_masked_detection(c: &mut Criterion) {
    // Mask quiescence cost: the Figure 1 machine over a realistic mix.
    let al = ode_bench::cred_card_alphabet();
    let te = parse("relative((after Buy & MoreCred()), after PayBill)", &al).unwrap();
    let dfa = Dfa::compile(&te, &al);
    let stream = event_stream(STREAM, 3, 21);
    let mut group = c.benchmark_group("detection_with_masks");
    group.throughput(Throughput::Elements(STREAM as u64));
    group.bench_function("figure1_machine", |b| {
        b.iter(|| {
            let mut state = dfa.start();
            let mut flip = false;
            let mut fired = 0u32;
            for &e in &stream {
                let out = dfa.post(state, e, |_| {
                    flip = !flip;
                    flip
                });
                state = out.state;
                fired += out.accepted as u32;
            }
            black_box((state, fired))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_expression_size, bench_alphabet_width, bench_masked_detection
}
criterion_main!(benches);
