//! E13 — group-commit throughput (§5.6 durability costs).
//!
//! Concurrent committers on the disk engine with `fsync: true`, comparing
//! the leader/follower group-commit protocol against the per-commit-flush
//! baseline (`group_commit: false`, where every committer runs its own
//! write+fsync cycle). Worker threads live for the whole benchmark and
//! are released in lockstep by barriers; one measured iteration is one
//! batch of `threads × BATCH` tiny update transactions, so the reported
//! Melem/s *is* commits per second and per-commit time is the iteration
//! time divided by the batch size.
//!
//! Expected shape: at 1 thread the two modes are equivalent (a leader
//! with an empty queue *is* a solo flusher); as threads grow, group
//! commit amortizes one fsync over the whole batch and pulls ahead —
//! ≥ 2× at 16 threads is the acceptance bar recorded in
//! `BENCH_commit_pipeline.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ode_storage::{EngineKind, Oid, Storage, StorageOptions};
use ode_testutil::TempDir;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

/// Commits per thread per measured iteration.
const BATCH: u64 = 32;

fn commit_once(storage: &Storage, oid: Oid, i: u64) {
    let txn = storage.begin().unwrap();
    storage
        .update(txn, oid, &i.to_le_bytes().repeat(8))
        .unwrap();
    storage.commit(txn).unwrap();
}

/// A pool of committer threads parked on a start barrier. Each
/// released round runs `BATCH` commits per thread against the thread's
/// own object, then parks on the done barrier.
struct Rig {
    _dir: TempDir,
    storage: Arc<Storage>,
    start: Arc<Barrier>,
    done: Arc<Barrier>,
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl Rig {
    fn new(group_commit: bool, threads: usize) -> Rig {
        let dir = TempDir::new("bench-commit-pipeline");
        let storage = Arc::new(
            Storage::create(
                dir.path(),
                StorageOptions {
                    engine: EngineKind::Disk,
                    fsync: true,
                    group_commit,
                    ..StorageOptions::default()
                },
            )
            .unwrap(),
        );
        let txn = storage.begin().unwrap();
        let cluster = storage.create_cluster(txn).unwrap();
        let oids: Vec<Oid> = (0..threads)
            .map(|i| storage.allocate(txn, cluster, &[i as u8; 64]).unwrap())
            .collect();
        storage.commit(txn).unwrap();

        let start = Arc::new(Barrier::new(threads + 1));
        let done = Arc::new(Barrier::new(threads + 1));
        let stop = Arc::new(AtomicBool::new(false));
        let handles = (0..threads)
            .map(|t| {
                let storage = Arc::clone(&storage);
                let start = Arc::clone(&start);
                let done = Arc::clone(&done);
                let stop = Arc::clone(&stop);
                let oid = oids[t];
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    loop {
                        start.wait();
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        for _ in 0..BATCH {
                            commit_once(&storage, oid, i);
                            i += 1;
                        }
                        done.wait();
                    }
                })
            })
            .collect();
        Rig {
            _dir: dir,
            storage,
            start,
            done,
            stop,
            handles,
        }
    }

    /// Release one batch and wait for every thread to finish it.
    fn round(&self) {
        self.start.wait();
        self.done.wait();
    }
}

impl Drop for Rig {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.start.wait();
        for h in self.handles.drain(..) {
            h.join().unwrap();
        }
    }
}

fn bench_commit_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_pipeline");
    for (mode, group_commit) in [("group_commit", true), ("solo_flush", false)] {
        for threads in [1usize, 4, 16] {
            let rig = Rig::new(group_commit, threads);
            group.throughput(Throughput::Elements(threads as u64 * BATCH));
            group.bench_function(BenchmarkId::new(mode, threads), |b| b.iter(|| rig.round()));
            let snap = rig.storage.metrics().snapshot();
            println!(
                "  [{mode}/{threads}] commits={} fsyncs={} group_commits={} avg_batch={:.2} \
                 flush_wait_ms={} flush_wait_p50={}us p99={}us max={}us",
                snap.txn_commits,
                snap.wal_fsyncs,
                snap.wal_group_commits,
                if snap.wal_group_commits > 0 {
                    snap.wal_group_size_sum as f64 / snap.wal_group_commits as f64
                } else {
                    0.0
                },
                snap.commit_flush_wait_micros.sum / 1000,
                snap.commit_flush_wait_micros.p50(),
                snap.commit_flush_wait_micros.p99(),
                snap.commit_flush_wait_micros.max,
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_commit_pipeline
}
criterion_main!(benches);
