//! E4 — §6: "triggers turn read access into write access, increasing both
//! the amount of time the transactions spend waiting for locks and the
//! likelihood of deadlock."
//!
//! Workload: 4 threads repeatedly run a read-only transaction against a
//! shared object (a member-function call that does not modify the
//! object). Without a trigger this is all shared locks — full parallelism.
//! With an active trigger whose FSM toggles on each posting, every
//! "read" writes the persistent trigger state; the bench reports
//! throughput and the lock manager's wait/deadlock counters.

use criterion::{criterion_group, criterion_main, Criterion};
use ode_bench::{new_card, register_cred_card, CardSetup, CredCard};
use ode_core::Database;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

const THREADS: usize = 4;
const TXNS_PER_THREAD: usize = 50;

/// One measured round: every thread runs TXNS_PER_THREAD transactions.
fn round(db: &Arc<Database>, card: ode_core::PersistentPtr<CredCard>, with_trigger: bool) -> u32 {
    let aborts = Arc::new(AtomicU32::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let db = Arc::clone(db);
            let aborts = Arc::clone(&aborts);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..TXNS_PER_THREAD {
                    let r = db.with_txn(|txn| {
                        // A read-only member invocation.
                        db.invoke(txn, card, "Buy", |_c: &mut CredCard| Ok(()))?;
                        if with_trigger {
                            // Completes the armed pattern so the FSM state
                            // toggles (stays write-heavy, like real arming
                            // patterns).
                            db.post_user_event(txn, card, "BigBuy")?;
                        }
                        Ok(())
                    });
                    if let Err(e) = r {
                        assert!(e.is_abort(), "{e}");
                        aborts.fetch_add(1, Ordering::SeqCst);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    aborts.load(Ordering::SeqCst)
}

fn setup(with_trigger: bool) -> (Arc<Database>, ode_core::PersistentPtr<CredCard>) {
    let db = Arc::new(Database::volatile());
    if with_trigger {
        // Pattern that toggles on Buy/BigBuy alternation.
        let td = ode_core::ClassBuilder::new("CredCard")
            .after_event("Buy")
            .user_event("BigBuy")
            .trigger(
                "Watch",
                "after Buy, BigBuy",
                ode_core::CouplingMode::Immediate,
                ode_core::Perpetual::Yes,
                |_| Ok(()),
            )
            .build(db.registry())
            .unwrap();
        db.register_class(&td).unwrap();
        let card = db
            .with_txn(|txn| {
                let card = db.pnew(
                    txn,
                    &CredCard {
                        cred_lim: 1.0,
                        curr_bal: 0.0,
                    },
                )?;
                db.activate(txn, card, "Watch", &())?;
                Ok(card)
            })
            .unwrap();
        (db, card)
    } else {
        register_cred_card(&db, CardSetup::EventsOnly);
        let card = new_card(&db, 0);
        (db, card)
    }
}

fn bench_lock_amplification(c: &mut Criterion) {
    let mut group = c.benchmark_group("lock_amplification");
    group.throughput(criterion::Throughput::Elements(
        (THREADS * TXNS_PER_THREAD) as u64,
    ));

    for (label, with_trigger) in [
        ("readers_no_trigger", false),
        ("readers_with_trigger", true),
    ] {
        let (db, card) = setup(with_trigger);
        db.storage().reset_lock_stats();
        let mut total_aborts = 0u32;
        group.bench_function(label, |b| {
            b.iter(|| {
                total_aborts += round(&db, card, with_trigger);
            })
        });
        let stats = db.storage().lock_stats();
        println!(
            "  [{label}] waits={} deadlocks={} upgrades={} wait_ms={} victim_aborts={}",
            stats.waits,
            stats.deadlocks,
            stats.upgrades,
            stats.wait_micros / 1000,
            total_aborts
        );
        ode_bench::dump_stats(&format!("lock_amplification/{label}"), &db);
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_lock_amplification
}
criterion_main!(benches);
