//! Inter-object triggers — the §8 extension: "we need to extend this to
//! inter-object triggers where there are several anchoring events so that
//! triggers like 'if AT&T goes below 60 and the price of gold stabilizes,
//! buy 1000 shares of AT&T' can be expressed."
//!
//! An inter-object trigger is defined against a set of *named anchors*,
//! each of an ordinary class. The events of each anchor's class are
//! re-interned under an anchor-qualified key (`Class@anchor`), so the same
//! member event on different anchors is a *different* symbol in the
//! trigger's FSM — "AT&T drops" and "gold drops" stay distinguishable even
//! when both anchors are `Stock`s. In expressions, anchor-qualified events
//! are written with a dot: `after att.SetPrice`, `gold.Stabilized`.
//!
//! At run time the shared `TriggerState` carries the anchor list; the
//! state record is indexed under *every* anchor, and `post_event`
//! translates an incoming event id to its anchor-qualified form before
//! advancing the FSM (see `Database::qualify_event`).

use crate::context::TriggerCtx;
use crate::error::{OdeError, Result};
use crate::metatype::{ActionFn, CouplingMode, MaskFn, TriggerInfo, TypeDescriptor};
use crate::trigger::TriggerId;
use crate::Database;
use ode_events::ast::Alphabet;
use ode_events::dfa::Dfa;
use ode_events::event::{BasicEvent, EventId};
use ode_events::parser::parse;
use ode_events::registry::EventRegistry;
use ode_storage::codec::{encode_to_vec, Encode};
use ode_storage::{Oid, TxnId};
use std::sync::Arc;

/// Registry key under which anchor-qualified events are interned.
pub(crate) fn qualified_class(defining_class: &str, anchor: &str) -> String {
    format!("{defining_class}@{anchor}")
}

/// Display name of an anchor-qualified event (parseable: the tokenizer
/// treats `.` as an identifier character).
fn qualified_display(anchor: &str, event: &BasicEvent) -> String {
    match event {
        BasicEvent::Member { name, time } => format!("{time} {anchor}.{name}"),
        BasicEvent::User { name } => format!("{anchor}.{name}"),
        BasicEvent::Timer { name } => format!("timer {anchor}.{name}"),
        BasicEvent::TxnComplete => "before tcomplete".to_string(),
        BasicEvent::TxnAbort => "before tabort".to_string(),
    }
}

struct PendingTrigger {
    name: String,
    expr: String,
    coupling: CouplingMode,
    perpetual: crate::class::Perpetual,
    action: ActionFn,
}

/// Builds the descriptor of an inter-object trigger set.
pub struct InterClassBuilder {
    name: String,
    anchors: Vec<(String, Arc<TypeDescriptor>)>,
    masks: Vec<(String, MaskFn)>,
    triggers: Vec<PendingTrigger>,
}

impl InterClassBuilder {
    /// Start defining an inter-object trigger set.
    pub fn new(name: &str) -> InterClassBuilder {
        InterClassBuilder {
            name: name.to_string(),
            anchors: Vec::new(),
            masks: Vec::new(),
            triggers: Vec::new(),
        }
    }

    /// Declare a named anchor of the given class.
    pub fn anchor(mut self, name: &str, class: &Arc<TypeDescriptor>) -> Self {
        self.anchors.push((name.to_string(), Arc::clone(class)));
        self
    }

    /// Declare a mask predicate (sees the posting anchor via
    /// [`TriggerCtx::anchor_oid`] and the full anchor list via
    /// [`TriggerCtx::named_anchor`]).
    pub fn mask(
        mut self,
        name: &str,
        f: impl for<'a, 'b> Fn(&'a mut TriggerCtx<'b>) -> Result<bool> + Send + Sync + 'static,
    ) -> Self {
        self.masks.push((name.to_string(), Arc::new(f)));
        self
    }

    /// Declare a trigger over the anchors' qualified events.
    pub fn trigger(
        mut self,
        name: &str,
        expr: &str,
        coupling: CouplingMode,
        perpetual: crate::class::Perpetual,
        action: impl for<'a, 'b> Fn(&'a mut TriggerCtx<'b>) -> Result<()> + Send + Sync + 'static,
    ) -> Self {
        self.triggers.push(PendingTrigger {
            name: name.to_string(),
            expr: expr.to_string(),
            coupling,
            perpetual,
            action: Arc::new(action),
        });
        self
    }

    /// Intern the qualified events and compile the trigger FSMs.
    pub fn build(self, registry: &EventRegistry) -> Result<Arc<TypeDescriptor>> {
        if self.anchors.is_empty() {
            return Err(OdeError::Schema(format!(
                "inter-object trigger set {:?} needs at least one anchor",
                self.name
            )));
        }
        let mut alphabet = Alphabet::new();
        let mut all_events: Vec<(BasicEvent, EventId, String)> = Vec::new();
        for (anchor_name, class) in &self.anchors {
            for (event, _, defining) in class.events() {
                let key = qualified_class(defining, anchor_name);
                let id = registry.intern(&key, event);
                let display = qualified_display(anchor_name, event);
                alphabet.add_event(id, &display);
                // Store the *qualified* display as a user-style event so
                // `event_id` lookups on the descriptor keep working.
                all_events.push((event.clone(), id, key));
            }
        }
        for (name, _) in &self.masks {
            alphabet.add_mask(name);
        }
        let mut triggers = Vec::with_capacity(self.triggers.len());
        for pending in self.triggers {
            let te = parse(&pending.expr, &alphabet)?;
            let fsm = Dfa::compile(&te, &alphabet);
            triggers.push(TriggerInfo {
                name: pending.name,
                fsm,
                action: pending.action,
                perpetual: pending.perpetual == crate::class::Perpetual::Yes,
                coupling: pending.coupling,
                event_source: pending.expr,
            });
        }
        Ok(Arc::new(TypeDescriptor::new(
            self.name,
            Vec::new(),
            alphabet,
            all_events,
            self.masks,
            triggers,
            false,
        )))
    }
}

impl Database {
    /// Activate an inter-object trigger, binding each declared anchor name
    /// to a concrete object.
    pub fn activate_inter<P: Encode>(
        &self,
        txn: TxnId,
        class: &str,
        trigger: &str,
        anchors: &[(&str, Oid)],
        params: &P,
    ) -> Result<TriggerId> {
        if anchors.is_empty() {
            return Err(OdeError::Schema(
                "inter-object activation needs at least one anchor".into(),
            ));
        }
        let named: Vec<(String, Oid)> = anchors.iter().map(|(n, o)| (n.to_string(), *o)).collect();
        self.activate_raw(
            txn,
            class,
            trigger,
            anchors[0].1,
            encode_to_vec(params),
            named,
        )
    }
}
