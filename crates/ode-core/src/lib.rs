//! # ode-core — the Ode object manager and trigger run-time
//!
//! This crate is the paper's primary contribution: the integration of
//! composite-event triggers into an object database (*The Ode Active
//! Database: Trigger Semantics and Implementation*, ICDE 1996).
//!
//! A [`Database`] layers on `ode-storage` (EOS-like disk engine or
//! Dali-like main-memory engine — regular Ode vs MM-Ode, §5.6) and
//! provides:
//!
//! * **Classes** with declared events and triggers —
//!   [`class::ClassBuilder`] plays the O++ compiler, interning events in
//!   the run-time registry (§5.2) and compiling trigger expressions to
//!   FSMs (§5.1).
//! * **Persistent objects** ([`Database::pnew`], [`object::PersistentPtr`])
//!   whose member functions, when invoked *through persistent pointers*
//!   via [`Database::invoke`], post `before`/`after` events exactly like
//!   the compiler-generated wrapper functions of §5.3. Volatile use of the
//!   same Rust types costs nothing (design goals 3–4).
//! * **Triggers**: activation/deactivation (§4.1), persistent trigger
//!   state outside the object plus the object→triggers hash index
//!   (§5.1.3), event posting with mask quiescence and
//!   fire-after-all-posted (§5.4.5), perpetual vs once-only (§4),
//!   and all four coupling modes with transaction events (§4.2, §5.5).
//! * **Extensions** the paper lists as future work: local rules
//!   ([`local`]), timed triggers ([`timed`]), and inter-object triggers
//!   ([`interobject`]).
//!
//! See the crate examples (`credit_card.rs` reproduces §4 end to end) and
//! the workspace DESIGN.md for the paper-to-module map.

#![warn(missing_docs)]

pub mod admin;
pub mod class;
pub mod context;
pub mod coupling;
pub mod database;
pub mod ddl;
pub mod engine;
pub mod error;
pub mod index;
mod intern;
pub mod interobject;
pub mod local;
pub mod metatype;
pub mod monitored;
pub mod object;
pub mod phoenix;
pub mod post;
pub mod session;
pub mod timed;
pub mod trigger;

pub use admin::{IntegrityIssue, IntegrityReport};
pub use class::{ClassBuilder, Perpetual};
pub use context::{TriggerCtx, TriggerStats};
pub use database::Database;
pub use ddl::{DdlError, Statement};
pub use engine::Engine;
pub use error::{OdeError, Result};
pub use interobject::InterClassBuilder;
pub use metatype::{CouplingMode, TriggerInfo, TypeDescriptor};
pub use monitored::{MonitoredClass, MonitoredClassBuilder, MonitoredPtr, MonitoredSpace};
pub use object::{OdeObject, PersistentPtr};
pub use phoenix::{PhoenixHandler, PhoenixReport};
pub use session::{PendingCommit, Session};
pub use trigger::TriggerId;

// Re-exports so applications need only this crate (plus the codec traits
// every persistent class implements).
pub use bytes;
pub use ode_derive::OdeClass;
pub use ode_events::event::{BasicEvent, EventId, EventTime};
pub use ode_storage::codec::{Decode, Encode};
pub use ode_storage::{EngineKind, Oid, Storage, StorageError, StorageOptions, TxnId};
