//! The Ode object manager: databases, classes, and persistent objects.
//!
//! A [`Database`] combines a storage engine (EOS-like disk or Dali-like
//! main-memory, §5.6) with the trigger run-time: a persistent schema
//! (class name → class id + cluster), the persistent trigger index of
//! §5.1.3, and per-transaction trigger lists (§5.5).
//!
//! Classes are *registered* each session ([`Database::register_class`])
//! exactly as O++ programs carry complete class definitions and recompile
//! the FSMs "every time we compile an O++ program" (§5.1.3) — only
//! class-id/cluster assignments persist.
//!
//! Member-function events are posted by [`Database::invoke`], the stand-in
//! for the O++ compiler's wrapper functions (§5.3): it posts `before f`,
//! runs the body against the object, writes the object back, and posts
//! `after f` — and only for calls through [`PersistentPtr`]s. Methods
//! called on plain Rust values post nothing (design goal 4).

use crate::context::TriggerStats;
use crate::error::{OdeError, Result};
use crate::intern::{Interner, Sym};
use crate::metatype::TypeDescriptor;
use crate::object::{ObjectHeader, OdeObject, PersistentPtr};
use crate::post::Firing;
use crate::trigger::CachedTriggerState;
use bytes::{BufMut, BytesMut};
use ode_events::event::EventTime;
use ode_events::registry::EventRegistry;
use ode_storage::codec::{decode_all, encode_to_vec, Decode, Encode};
use ode_storage::hashindex::HashIndex;
use ode_storage::{ClusterId, Oid, Storage, StorageOptions, TxnId};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A registered class: persistent ids plus the session's descriptor.
#[derive(Clone)]
pub(crate) struct ClassEntry {
    pub id: u32,
    pub cluster: ClusterId,
    /// The class name's interned symbol (same interner as the trigger
    /// records, so hot-path lookups never compare strings).
    pub sym: Sym,
    pub td: Arc<TypeDescriptor>,
}

#[derive(Default)]
struct Schema {
    by_name: HashMap<String, ClassEntry>,
    by_id: HashMap<u32, String>,
    by_sym: HashMap<Sym, ClassEntry>,
}

/// The persisted part of the schema.
struct SchemaRecord {
    next_class_id: u32,
    classes: Vec<(String, u32, ClusterId)>,
}

impl Encode for SchemaRecord {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.next_class_id);
        self.classes.encode(buf);
    }
}

impl Decode for SchemaRecord {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(SchemaRecord {
            next_class_id: u32::decode(buf)?,
            classes: Vec::<(String, u32, ClusterId)>::decode(buf)?,
        })
    }
}

/// Per-transaction trigger bookkeeping (§5.5's lists).
#[derive(Default)]
pub(crate) struct TxnLocal {
    /// `end`-coupled firings, run right before commit.
    pub end_list: Vec<Firing>,
    /// `dependent` firings, run in a system transaction after commit.
    pub dep_list: Vec<Firing>,
    /// `!dependent` firings, run in a system transaction after commit *or*
    /// abort.
    pub indep_list: Vec<Firing>,
    /// Objects interested in transaction events, noted on first access.
    pub txn_event_objects: Vec<Oid>,
    /// Volatile local-rule instances (§8 "local rules"), dropped at end of
    /// transaction.
    pub local_triggers: Vec<crate::local::LocalInstance>,
    /// Trigger states touched by this transaction: decoded once on first
    /// advance, dirty `statenum`s written back in one pass at commit (and
    /// simply dropped on abort — storage was never written).
    pub state_cache: HashMap<Oid, CachedTriggerState>,
    /// Reusable buffer for trigger-index lookups during posting, so the
    /// steady-state path allocates no fresh `Vec<Oid>` per event.
    pub scratch: Vec<Oid>,
}

/// Sharded map of per-transaction scratch state ([`TxnLocal`]). Keyed by
/// transaction id so concurrent transactions land on different mutexes
/// instead of one process-wide map lock (which every commit and every
/// posting hot-path touch funnelled through). The shard count follows the
/// storage `shards` knob; `1` reproduces the original single-mutex map.
pub(crate) struct TxnLocalMap {
    shards: Box<[Mutex<HashMap<TxnId, TxnLocal>>]>,
    mask: usize,
}

impl TxnLocalMap {
    fn new(shards: usize) -> TxnLocalMap {
        let n = shards.max(1).next_power_of_two();
        TxnLocalMap {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: n - 1,
        }
    }

    /// Lock the shard holding `txn`'s entry.
    pub(crate) fn lock(&self, txn: TxnId) -> parking_lot::MutexGuard<'_, HashMap<TxnId, TxnLocal>> {
        self.shards[txn.0 as usize & self.mask].lock()
    }
}

/// An Ode database: object manager + trigger run-time over a storage
/// engine.
pub struct Database {
    pub(crate) storage: Arc<Storage>,
    registry: Arc<EventRegistry>,
    schema: RwLock<Schema>,
    pub(crate) trigger_index: HashIndex,
    pub(crate) trigger_cluster: ClusterId,
    pub(crate) txn_local: TxnLocalMap,
    /// Session-wide name interner backing every [`Sym`] in the trigger
    /// run-time.
    pub(crate) interner: Interner,
    /// Metrics snapshot taken at the last [`Database::reset_trigger_stats`];
    /// [`Database::trigger_stats`] is the difference between the live
    /// registry and this baseline (off the hot path — posting itself only
    /// ticks lock-free counters).
    stats_baseline: Mutex<ode_obs::MetricsSnapshot>,
    /// Number of live local-rule instances across all transactions; lets
    /// posting skip the txn-local lock entirely when zero (the common
    /// case).
    pub(crate) live_local_rules: AtomicUsize,
    pub(crate) phoenix_handlers: RwLock<HashMap<String, crate::phoenix::PhoenixHandler>>,
    pub(crate) indexes: RwLock<crate::index::IndexRegistry>,
    /// Classes defined through the DDL surface ([`crate::ddl`]); the mutex
    /// serializes `CREATE CLASS`/`CREATE TRIGGER` descriptor rebuilds.
    pub(crate) ddl: Mutex<crate::ddl::DdlCatalog>,
}

const ROOT_SCHEMA: &str = "ode.schema";
const ROOT_TRIGGER_INDEX: &str = "ode.trigger_index";
const ROOT_TRIGGER_CLUSTER: &str = "ode.trigger_cluster";

impl Database {
    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Create a new database in `dir`.
    pub fn create(dir: &Path, options: StorageOptions) -> Result<Database> {
        let storage = Arc::new(Storage::create(dir, options)?);
        Database::bootstrap(storage)
    }

    /// Open an existing database in `dir` (runs recovery when needed).
    pub fn open(dir: &Path, options: StorageOptions) -> Result<Database> {
        let storage = Arc::new(Storage::open(dir, options)?);
        Database::attach(storage)
    }

    /// A fully volatile in-memory database (tests, examples).
    pub fn volatile() -> Database {
        let storage = Arc::new(Storage::volatile());
        Database::bootstrap(storage).expect("volatile bootstrap cannot fail")
    }

    /// [`Database::volatile`] with explicit storage options (the engine is
    /// forced to memory). The concurrency knobs (`shards`,
    /// `lock_stripes`) are the usual reason to come here — e.g. the
    /// `concurrency_core` bench's stripe-count-1 baseline.
    pub fn volatile_with(options: StorageOptions) -> Database {
        let storage = Arc::new(Storage::volatile_with(options));
        Database::bootstrap(storage).expect("volatile bootstrap cannot fail")
    }

    fn bootstrap(storage: Arc<Storage>) -> Result<Database> {
        let txn = storage.begin()?;
        let trigger_cluster = storage.create_cluster(txn)?;
        let index = HashIndex::create(&storage, txn, trigger_cluster)?;
        let schema_rec = SchemaRecord {
            next_class_id: 1,
            classes: Vec::new(),
        };
        let schema_oid = storage.allocate(txn, trigger_cluster, &encode_to_vec(&schema_rec))?;
        storage.set_root(txn, ROOT_SCHEMA, schema_oid)?;
        storage.set_root(txn, ROOT_TRIGGER_INDEX, index.oid())?;
        // The cluster id is stored as a root "pointer" by packing it into a
        // fake Oid (page = cluster id). Small but explicit.
        storage.set_root(txn, ROOT_TRIGGER_CLUSTER, Oid::new(trigger_cluster, 0))?;
        storage.commit(txn)?;
        let registry = Arc::new(EventRegistry::with_metrics(Arc::clone(storage.metrics())));
        let txn_local = TxnLocalMap::new(storage.options().shards);
        Ok(Database {
            storage,
            registry,
            schema: RwLock::new(Schema::default()),
            trigger_index: HashIndex::open(index.oid()),
            trigger_cluster,
            txn_local,
            interner: Interner::default(),
            stats_baseline: Mutex::new(ode_obs::MetricsSnapshot::default()),
            live_local_rules: AtomicUsize::new(0),
            phoenix_handlers: RwLock::new(HashMap::new()),
            indexes: RwLock::new(crate::index::IndexRegistry::default()),
            ddl: Mutex::new(crate::ddl::DdlCatalog::default()),
        })
    }

    fn attach(storage: Arc<Storage>) -> Result<Database> {
        let txn = storage.begin()?;
        let index_oid = storage.get_root(txn, ROOT_TRIGGER_INDEX)?;
        let trigger_cluster = storage.get_root(txn, ROOT_TRIGGER_CLUSTER)?.page();
        storage.commit(txn)?;
        let registry = Arc::new(EventRegistry::with_metrics(Arc::clone(storage.metrics())));
        let txn_local = TxnLocalMap::new(storage.options().shards);
        Ok(Database {
            storage,
            registry,
            schema: RwLock::new(Schema::default()),
            trigger_index: HashIndex::open(index_oid),
            trigger_cluster,
            txn_local,
            interner: Interner::default(),
            stats_baseline: Mutex::new(ode_obs::MetricsSnapshot::default()),
            live_local_rules: AtomicUsize::new(0),
            phoenix_handlers: RwLock::new(HashMap::new()),
            indexes: RwLock::new(crate::index::IndexRegistry::default()),
            ddl: Mutex::new(crate::ddl::DdlCatalog::default()),
        })
    }

    /// Checkpoint and close.
    pub fn close(self) -> Result<()> {
        match Arc::try_unwrap(self.storage) {
            Ok(storage) => storage.close()?,
            // Other handles still hold the storage: take a best-effort
            // checkpoint. In-flight transactions make the quiesced path
            // refuse; that is fine — the WAL covers everything.
            Err(shared) => match shared.checkpoint() {
                Ok(()) | Err(ode_storage::StorageError::NotQuiesced(_)) => {}
                Err(e) => return Err(e.into()),
            },
        }
        Ok(())
    }

    /// The event registry used by this database instance. Build class
    /// descriptors against this registry so event ids line up.
    pub fn registry(&self) -> &Arc<EventRegistry> {
        &self.registry
    }

    /// The underlying storage engine (lock statistics, checkpoints…).
    pub fn storage(&self) -> &Arc<Storage> {
        &self.storage
    }

    /// Snapshot of every engine counter — locks, WAL, buffer pool, FSM
    /// compilation/run-time, and trigger firings by coupling mode — as a
    /// plain struct of `u64`s. See
    /// [`MetricsSnapshot::render_prometheus`](ode_obs::MetricsSnapshot::render_prometheus)
    /// for the text exposition format.
    pub fn stats(&self) -> ode_obs::MetricsSnapshot {
        self.storage.metrics().snapshot()
    }

    /// The live database-wide metrics registry (shared with the storage
    /// and event layers).
    pub fn metrics(&self) -> &Arc<ode_obs::Metrics> {
        self.storage.metrics()
    }

    /// Attach (or with `None`, detach) a structured trace sink receiving
    /// [`ode_obs::TraceEvent`]s from every engine layer.
    pub fn set_trace_sink(&self, sink: Option<Arc<dyn ode_obs::TraceSink>>) {
        self.storage.metrics().set_sink(sink);
    }

    /// Snapshot the always-on flight recorder: the last
    /// [`ode_obs::DEFAULT_FLIGHT_CAPACITY`] trace occurrences across every
    /// engine layer, oldest-first, each with a monotonic timestamp and the
    /// causal ids (txn, trigger, FSM states, LSN) needed to reconstruct
    /// the chain *posted event → FSM advances → firing → system txn →
    /// durable commit*.
    pub fn flight_log(&self) -> Vec<ode_obs::FlightRecord> {
        self.storage.metrics().flight_log()
    }

    /// Flight-log dumps preserved at anomalies (deadlock victim
    /// selection, lock timeout, WAL poisoning), oldest-first.
    pub fn flight_dumps(&self) -> Vec<ode_obs::FlightDump> {
        self.storage.metrics().flight_dumps()
    }

    /// Snapshot of trigger-runtime statistics — a view derived from the
    /// lock-free metrics registry (minus the [`Database::reset_trigger_stats`]
    /// baseline), so the posting hot path never takes a statistics mutex.
    pub fn trigger_stats(&self) -> TriggerStats {
        let snap = self.storage.metrics().snapshot();
        let base = *self.stats_baseline.lock();
        let d = |now: u64, then: u64| now.saturating_sub(then);
        TriggerStats {
            events_posted: d(snap.events_posted, base.events_posted),
            fsm_advances: d(snap.fsm_advances, base.fsm_advances),
            mask_evaluations: d(snap.mask_evaluations, base.mask_evaluations),
            immediate_firings: d(snap.firings_immediate, base.firings_immediate),
            deferred_firings: d(
                snap.firings_end + snap.firings_dependent + snap.firings_independent,
                base.firings_end + base.firings_dependent + base.firings_independent,
            ),
            activations: d(snap.trigger_activations, base.trigger_activations),
            deactivations: d(snap.trigger_deactivations, base.trigger_deactivations),
            detached_failures: d(snap.detached_failures, base.detached_failures),
            index_skips: d(snap.index_skips, base.index_skips),
        }
    }

    /// Reset trigger-runtime statistics (benchmarks). The engine-wide
    /// metrics registry is left untouched; only the
    /// [`Database::trigger_stats`] view rebases to the current counters.
    pub fn reset_trigger_stats(&self) {
        *self.stats_baseline.lock() = self.storage.metrics().snapshot();
    }

    /// The *stored* FSM state number of an active trigger — what is (or
    /// will be, once committed) on disk, bypassing any in-transaction
    /// cached advance. Crash-recovery tests use this to check that trigger
    /// FSM positions roll back and survive with their transaction.
    pub fn trigger_statenum(&self, txn: TxnId, id: crate::trigger::TriggerId) -> Result<u32> {
        let raw = self.storage.read(txn, id.oid())?;
        let rec = crate::trigger::TriggerStateRec::decode_with(&raw, &self.interner)?;
        Ok(rec.statenum)
    }

    // ------------------------------------------------------------------
    // Schema
    // ------------------------------------------------------------------

    fn load_schema_record(&self, txn: TxnId) -> Result<(Oid, SchemaRecord)> {
        let oid = self.storage.get_root(txn, ROOT_SCHEMA)?;
        let rec = decode_all(&self.storage.read(txn, oid)?)?;
        Ok((oid, rec))
    }

    /// Register a class descriptor for this session, assigning (or
    /// recovering) its persistent class id and cluster. Base classes are
    /// registered automatically. Idempotent.
    pub fn register_class(&self, td: &Arc<TypeDescriptor>) -> Result<()> {
        for base in td.bases() {
            self.register_class(base)?;
        }
        // Fast path: already registered this session. The read guard must
        // be dropped before the replace path takes the write lock — an
        // `if let` on the guard itself would hold it across the body and
        // self-deadlock.
        let existing = self.schema.read().by_name.get(td.name()).cloned();
        if let Some(entry) = existing {
            if !Arc::ptr_eq(&entry.td, td) {
                // Replace the descriptor (e.g. a rebuilt one); ids persist.
                let mut schema = self.schema.write();
                let entry = ClassEntry {
                    td: Arc::clone(td),
                    ..entry
                };
                schema.by_sym.insert(entry.sym, entry.clone());
                schema.by_name.insert(td.name().to_string(), entry);
            }
            return Ok(());
        }
        let txn = self.storage.begin()?;
        let result = (|| {
            let (schema_oid, mut rec) = self.load_schema_record(txn)?;
            let (id, cluster) = match rec.classes.iter().find(|(name, _, _)| name == td.name()) {
                Some(&(_, id, cluster)) => (id, cluster),
                None => {
                    let id = rec.next_class_id;
                    rec.next_class_id += 1;
                    let cluster = self.storage.create_cluster(txn)?;
                    rec.classes.push((td.name().to_string(), id, cluster));
                    self.storage.update(txn, schema_oid, &encode_to_vec(&rec))?;
                    (id, cluster)
                }
            };
            Ok::<_, OdeError>((id, cluster))
        })();
        match result {
            Ok((id, cluster)) => {
                self.storage.commit(txn)?;
                let sym = self.interner.intern(td.name());
                let entry = ClassEntry {
                    id,
                    cluster,
                    sym,
                    td: Arc::clone(td),
                };
                let mut schema = self.schema.write();
                schema.by_name.insert(td.name().to_string(), entry.clone());
                schema.by_sym.insert(sym, entry);
                schema.by_id.insert(id, td.name().to_string());
                Ok(())
            }
            Err(e) => {
                let _ = self.storage.abort(txn);
                Err(e)
            }
        }
    }

    /// Every registered class name, sorted — DDL-defined and
    /// host-registered alike (`SHOW CLASSES` / `SHOW TRIGGERS`).
    pub fn class_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.schema.read().by_name.keys().cloned().collect();
        names.sort();
        names
    }

    /// Look up a registered class's descriptor.
    pub fn descriptor(&self, class: &str) -> Option<Arc<TypeDescriptor>> {
        self.schema
            .read()
            .by_name
            .get(class)
            .map(|e| Arc::clone(&e.td))
    }

    pub(crate) fn entry(&self, class: &str) -> Result<ClassEntry> {
        self.schema
            .read()
            .by_name
            .get(class)
            .cloned()
            .ok_or_else(|| OdeError::Schema(format!("class {class:?} is not registered")))
    }

    /// Hot-path class lookup by interned symbol — one integer-keyed map
    /// probe, no string hashing, no allocation beyond the `Arc` bumps in
    /// the cloned entry.
    pub(crate) fn entry_sym(&self, sym: Sym) -> Result<ClassEntry> {
        self.schema.read().by_sym.get(&sym).cloned().ok_or_else(|| {
            OdeError::Schema(format!(
                "class {:?} is not registered",
                &*self.interner.resolve(sym)
            ))
        })
    }

    pub(crate) fn entry_by_id(&self, id: u32) -> Result<ClassEntry> {
        let schema = self.schema.read();
        let name = schema.by_id.get(&id).ok_or_else(|| {
            OdeError::Schema(format!(
                "unknown class id {id} (class not registered this session?)"
            ))
        })?;
        schema
            .by_name
            .get(name)
            .cloned()
            .ok_or_else(|| OdeError::Schema(format!("class {name:?} vanished")))
    }

    // ------------------------------------------------------------------
    // Raw record access (shared by object ops and trigger machinery)
    // ------------------------------------------------------------------

    pub(crate) fn read_raw(&self, txn: TxnId, oid: Oid) -> Result<(ObjectHeader, Vec<u8>)> {
        let record = self.storage.read(txn, oid)?;
        let (header, payload) = ObjectHeader::split(&record)?;
        Ok((header, payload.to_vec()))
    }

    /// Header-only read for paths that never look at the payload (event
    /// posting, class resolution) — skips [`Database::read_raw`]'s payload
    /// copy.
    pub(crate) fn read_header(&self, txn: TxnId, oid: Oid) -> Result<ObjectHeader> {
        let record = self.storage.read(txn, oid)?;
        let (header, _) = ObjectHeader::split(&record)?;
        Ok(header)
    }

    /// True when any transaction holds live local-rule instances — lets
    /// the posting hot path skip the txn-local lock in the common
    /// no-local-rules case.
    pub(crate) fn has_local_rules(&self) -> bool {
        self.live_local_rules.load(Ordering::Relaxed) > 0
    }

    /// Remove (and return) a transaction's local scratchpad, keeping the
    /// live-local-rule count in step. Every commit/abort path funnels
    /// through here.
    pub(crate) fn drop_txn_local(&self, txn: TxnId) -> TxnLocal {
        let local = self.txn_local.lock(txn).remove(&txn).unwrap_or_default();
        if !local.local_triggers.is_empty() {
            self.live_local_rules
                .fetch_sub(local.local_triggers.len(), Ordering::Relaxed);
        }
        local
    }

    pub(crate) fn write_raw(
        &self,
        txn: TxnId,
        oid: Oid,
        header: ObjectHeader,
        payload: &[u8],
    ) -> Result<()> {
        let mut buf = BytesMut::with_capacity(5 + payload.len());
        header.write(&mut buf);
        buf.put_slice(payload);
        self.storage.update(txn, oid, &buf)?;
        Ok(())
    }

    /// Note that an object interested in transaction events was accessed
    /// (the "transaction event object list" of §5.5).
    pub(crate) fn note_txn_interest(&self, txn: TxnId, td: &TypeDescriptor, oid: Oid) {
        if !td.wants_txn_events() {
            return;
        }
        // Snapshot readers never post tcomplete/tabort events — keeping
        // the list empty keeps their commit path entirely event-free.
        if self.storage.is_read_only(txn) {
            return;
        }
        let mut locals = self.txn_local.lock(txn);
        let local = locals.entry(txn).or_default();
        if !local.txn_event_objects.contains(&oid) {
            local.txn_event_objects.push(oid);
        }
    }

    // ------------------------------------------------------------------
    // Object operations
    // ------------------------------------------------------------------

    /// `pnew`: allocate a persistent object.
    pub fn pnew<T: OdeObject>(&self, txn: TxnId, value: &T) -> Result<PersistentPtr<T>> {
        let entry = self.entry(T::CLASS)?;
        let header = ObjectHeader {
            class_id: entry.id,
            flags: 0,
        };
        let mut buf = BytesMut::new();
        header.write(&mut buf);
        value.encode(&mut buf);
        let oid = self.storage.allocate(txn, entry.cluster, &buf)?;
        self.note_txn_interest(txn, &entry.td, oid);
        self.maintain_indexes(txn, T::CLASS, oid, None, Some(&buf[5..]))?;
        Ok(PersistentPtr::from_oid(oid))
    }

    /// `pdelete`: deactivate the object's triggers, unindex it, free it.
    pub fn pdelete<T: OdeObject>(&self, txn: TxnId, ptr: PersistentPtr<T>) -> Result<()> {
        self.deactivate_all(txn, ptr.oid())?;
        let (header, payload) = self.read_raw(txn, ptr.oid())?;
        let entry = self.entry_by_id(header.class_id)?;
        self.maintain_indexes(txn, entry.td.name(), ptr.oid(), Some(&payload), None)?;
        self.storage.free(txn, ptr.oid())?;
        Ok(())
    }

    /// Read a typed copy of the object. The object's dynamic class must be
    /// `T::CLASS` or derived from it (derived payloads must extend the
    /// base layout, like C++ object layout).
    pub fn read<T: OdeObject>(&self, txn: TxnId, ptr: PersistentPtr<T>) -> Result<T> {
        let (header, payload) = self.read_raw(txn, ptr.oid())?;
        let entry = self.entry_by_id(header.class_id)?;
        if !entry.td.is_subclass_of(T::CLASS) {
            return Err(OdeError::TypeMismatch {
                expected: T::CLASS.to_string(),
                actual: entry.td.name().to_string(),
            });
        }
        self.note_txn_interest(txn, &entry.td, ptr.oid());
        let mut slice = &payload[..];
        let value = T::decode(&mut slice).map_err(OdeError::from)?;
        if entry.td.name() == T::CLASS && !slice.is_empty() {
            return Err(OdeError::Schema(format!(
                "{} bytes left over decoding {}",
                slice.len(),
                T::CLASS
            )));
        }
        Ok(value)
    }

    /// Read-modify-write an object *without* posting events (a volatile-
    /// style mutation; use [`Database::invoke`] for member functions).
    /// Requires the exact class (no slicing writes).
    pub fn update_with<T: OdeObject>(
        &self,
        txn: TxnId,
        ptr: PersistentPtr<T>,
        f: impl FnOnce(&mut T),
    ) -> Result<()> {
        let (header, payload) = self.read_raw(txn, ptr.oid())?;
        let entry = self.entry_by_id(header.class_id)?;
        if entry.td.name() != T::CLASS {
            return Err(OdeError::TypeMismatch {
                expected: T::CLASS.to_string(),
                actual: entry.td.name().to_string(),
            });
        }
        self.note_txn_interest(txn, &entry.td, ptr.oid());
        let mut value: T = decode_all(&payload)?;
        f(&mut value);
        let new_payload = encode_to_vec(&value);
        self.maintain_indexes(txn, T::CLASS, ptr.oid(), Some(&payload), Some(&new_payload))?;
        self.write_raw(txn, ptr.oid(), header, &new_payload)
    }

    /// Invoke a member function through a persistent pointer — the
    /// compiler-generated *wrapper function* of §5.3. Posts `before
    /// <method>` (if declared), runs `body` on the object, writes the
    /// object back if it changed, then posts `after <method>` (if
    /// declared). Trigger actions fired by these events run inside this
    /// call; a `tabort` from an action surfaces as an `Err` whose
    /// [`OdeError::is_abort`] is true.
    pub fn invoke<T: OdeObject, R>(
        &self,
        txn: TxnId,
        ptr: PersistentPtr<T>,
        method: &str,
        body: impl FnOnce(&mut T) -> Result<R>,
    ) -> Result<R> {
        self.invoke_inner(txn, ptr, method, None, body)
    }

    /// Like [`Database::invoke`], but attaches the member function's
    /// encoded arguments to the posted `before`/`after` events so masks
    /// (and actions fired by this posting) can inspect them via
    /// [`crate::context::TriggerCtx::event_args`] — the §8 "attributes of
    /// events" extension.
    pub fn invoke_with_args<T: OdeObject, A: Encode, R>(
        &self,
        txn: TxnId,
        ptr: PersistentPtr<T>,
        method: &str,
        args: &A,
        body: impl FnOnce(&mut T) -> Result<R>,
    ) -> Result<R> {
        let encoded = encode_to_vec(args);
        self.invoke_inner(txn, ptr, method, Some(&encoded), body)
    }

    fn invoke_inner<T: OdeObject, R>(
        &self,
        txn: TxnId,
        ptr: PersistentPtr<T>,
        method: &str,
        args: Option<&[u8]>,
        body: impl FnOnce(&mut T) -> Result<R>,
    ) -> Result<R> {
        let oid = ptr.oid();
        // Resolve the dynamic class first (cheap header read).
        let header = self.read_header(txn, oid)?;
        let entry = self.entry_by_id(header.class_id)?;
        if !entry.td.is_subclass_of(T::CLASS) {
            return Err(OdeError::TypeMismatch {
                expected: T::CLASS.to_string(),
                actual: entry.td.name().to_string(),
            });
        }
        self.note_txn_interest(txn, &entry.td, oid);

        if let Some(event) = entry.td.member_event(method, EventTime::Before) {
            self.post_event_with_args(txn, oid, event, args)?;
        }
        // Read *after* the before-event: its triggers may have updated the
        // object.
        let (header, payload) = self.read_raw(txn, oid)?;
        let mut slice = &payload[..];
        let mut value = T::decode(&mut slice).map_err(OdeError::from)?;
        let tail = slice.to_vec(); // derived-class extension bytes
        let result = body(&mut value)?;
        let mut new_payload = encode_to_vec(&value);
        new_payload.extend_from_slice(&tail);
        if new_payload != payload {
            self.maintain_indexes(
                txn,
                entry.td.name(),
                oid,
                Some(&payload),
                Some(&new_payload),
            )?;
            self.write_raw(txn, oid, header, &new_payload)?;
        }
        if let Some(event) = entry.td.member_event(method, EventTime::After) {
            self.post_event_with_args(txn, oid, event, args)?;
        }
        Ok(result)
    }

    /// Post a user-defined event to an object ("user-defined events must
    /// be explicitly posted by the application", §4). The event must be
    /// declared by the object's class.
    pub fn post_user_event<T: OdeObject>(
        &self,
        txn: TxnId,
        ptr: PersistentPtr<T>,
        event: &str,
    ) -> Result<()> {
        let header = self.read_header(txn, ptr.oid())?;
        let entry = self.entry_by_id(header.class_id)?;
        let id = entry
            .td
            .event_id(&ode_events::BasicEvent::user(event))
            .ok_or_else(|| {
                OdeError::Schema(format!(
                    "event {event:?} is not declared by class {}",
                    entry.td.name()
                ))
            })?;
        self.post_event(txn, ptr.oid(), id)
    }

    /// All objects of `T`'s cluster (O++ cluster iteration). Derived
    /// classes live in their own clusters and are not included.
    pub fn scan<T: OdeObject>(&self, txn: TxnId) -> Result<Vec<PersistentPtr<T>>> {
        let entry = self.entry(T::CLASS)?;
        let mut oids = self.storage.scan_cluster(txn, entry.cluster)?;
        oids.sort_unstable();
        Ok(oids.into_iter().map(PersistentPtr::from_oid).collect())
    }

    /// Cluster iteration with a predicate — O++'s
    /// `for (x in cluster) suchthat(pred)` (§2 lists "iterating over
    /// clusters of persistent objects" among O++'s facilities). Returns
    /// matching objects with their pointers. For indexed attributes prefer
    /// [`Database::lookup_by_index`]/[`Database::range_by_index`].
    pub fn select<T: OdeObject>(
        &self,
        txn: TxnId,
        suchthat: impl Fn(&T) -> bool,
    ) -> Result<Vec<(PersistentPtr<T>, T)>> {
        let mut out = Vec::new();
        for ptr in self.scan::<T>(txn)? {
            let value = self.read(txn, ptr)?;
            if suchthat(&value) {
                out.push((ptr, value));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassBuilder;

    #[derive(Debug, Clone, PartialEq)]
    struct Point {
        x: i32,
        y: i32,
    }

    impl Encode for Point {
        fn encode(&self, buf: &mut BytesMut) {
            self.x.encode(buf);
            self.y.encode(buf);
        }
    }

    impl Decode for Point {
        fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
            Ok(Point {
                x: i32::decode(buf)?,
                y: i32::decode(buf)?,
            })
        }
    }

    impl OdeObject for Point {
        const CLASS: &'static str = "Point";
    }

    fn setup() -> Database {
        let db = Database::volatile();
        let td = ClassBuilder::new("Point").build(db.registry()).unwrap();
        db.register_class(&td).unwrap();
        db
    }

    #[test]
    fn pnew_read_update_delete() {
        let db = setup();
        let txn = db.begin().unwrap();
        let p = db.pnew(txn, &Point { x: 1, y: 2 }).unwrap();
        assert_eq!(db.read(txn, p).unwrap(), Point { x: 1, y: 2 });
        db.update_with(txn, p, |pt| pt.x = 10).unwrap();
        assert_eq!(db.read(txn, p).unwrap().x, 10);
        db.pdelete(txn, p).unwrap();
        assert!(db.read(txn, p).is_err());
        db.commit(txn).unwrap();
    }

    #[test]
    fn unregistered_class_is_an_error() {
        let db = Database::volatile();
        let txn = db.begin().unwrap();
        assert!(matches!(
            db.pnew(txn, &Point { x: 0, y: 0 }),
            Err(OdeError::Schema(_))
        ));
        db.abort(txn).unwrap();
    }

    #[test]
    fn scan_lists_class_objects_in_order() {
        let db = setup();
        let txn = db.begin().unwrap();
        let a = db.pnew(txn, &Point { x: 1, y: 0 }).unwrap();
        let b = db.pnew(txn, &Point { x: 2, y: 0 }).unwrap();
        let scanned = db.scan::<Point>(txn).unwrap();
        assert_eq!(scanned, vec![a, b]);
        db.commit(txn).unwrap();
    }

    #[test]
    fn registration_is_idempotent_and_persistent() {
        use ode_testutil::TempDir;
        let dir = TempDir::new("db");
        let entry_before;
        {
            let db = Database::create(dir.path(), StorageOptions::default()).unwrap();
            let td = ClassBuilder::new("Point").build(db.registry()).unwrap();
            db.register_class(&td).unwrap();
            db.register_class(&td).unwrap();
            entry_before = (
                db.entry("Point").unwrap().id,
                db.entry("Point").unwrap().cluster,
            );
            let txn = db.begin().unwrap();
            db.pnew(txn, &Point { x: 5, y: 5 }).unwrap();
            db.commit(txn).unwrap();
            db.close().unwrap();
        }
        {
            let db = Database::open(dir.path(), StorageOptions::default()).unwrap();
            let td = ClassBuilder::new("Point").build(db.registry()).unwrap();
            db.register_class(&td).unwrap();
            let entry = db.entry("Point").unwrap();
            assert_eq!((entry.id, entry.cluster), entry_before);
            let txn = db.begin().unwrap();
            let pts = db.scan::<Point>(txn).unwrap();
            assert_eq!(pts.len(), 1);
            assert_eq!(db.read(txn, pts[0]).unwrap(), Point { x: 5, y: 5 });
            db.commit(txn).unwrap();
        }
    }

    #[test]
    fn read_rejects_wrong_class() {
        #[derive(Debug)]
        struct Other;
        impl Encode for Other {
            fn encode(&self, _buf: &mut BytesMut) {}
        }
        impl Decode for Other {
            fn decode(_buf: &mut &[u8]) -> ode_storage::Result<Self> {
                Ok(Other)
            }
        }
        impl OdeObject for Other {
            const CLASS: &'static str = "Other";
        }
        let db = setup();
        let other_td = ClassBuilder::new("Other").build(db.registry()).unwrap();
        db.register_class(&other_td).unwrap();
        let txn = db.begin().unwrap();
        let p = db.pnew(txn, &Point { x: 1, y: 2 }).unwrap();
        let as_other: PersistentPtr<Other> = p.cast();
        assert!(matches!(
            db.read(txn, as_other),
            Err(OdeError::TypeMismatch { .. })
        ));
        db.commit(txn).unwrap();
    }
}
