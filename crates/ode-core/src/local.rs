//! Local rules — the §8 "future work" the paper sketches, implemented.
//!
//! "Including local rules would be useful, since they are low cost and
//! useful for a variety of tasks. No persistent storage is required for
//! such triggers, only data structures that can be deallocated at
//! end-of-transaction. Also, such triggers never require obtaining write
//! locks for the purpose of processing trigger events. They can be used
//! internally to efficiently implement constraints."
//!
//! A local trigger is activated for the current transaction only: its FSM
//! state lives in the per-transaction per-transaction scratchpad
//! scratchpad, advancing it takes no locks and writes nothing, and the
//! instance evaporates when the transaction ends (commit or abort).
//! Coupling is restricted to `immediate` and `end` — a local rule cannot
//! outlive its transaction, so the detached modes make no sense for it.

use crate::database::Database;
use crate::error::{OdeError, Result};
use crate::intern::Sym;
use crate::metatype::CouplingMode;
use crate::object::{OdeObject, PersistentPtr};
use crate::post::Firing;
use ode_events::event::EventId;
use ode_events::machine::Advance;
use ode_storage::codec::{encode_to_vec, Encode};
use ode_storage::{Oid, TxnId};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A volatile trigger instance (never stored).
#[derive(Debug, Clone)]
pub struct LocalInstance {
    pub(crate) class_sym: Sym,
    pub(crate) triggernum: usize,
    pub(crate) trigger_name: Arc<str>,
    pub(crate) anchor: Oid,
    pub(crate) params: Arc<[u8]>,
    pub(crate) statenum: u32,
}

impl Database {
    /// Activate a trigger as a *local rule*: it monitors events for the
    /// remainder of this transaction only. The trigger definition is an
    /// ordinary class trigger; only its activation is transient.
    pub fn activate_local<T: OdeObject, P: Encode>(
        &self,
        txn: TxnId,
        ptr: PersistentPtr<T>,
        trigger: &str,
        params: &P,
    ) -> Result<()> {
        let entry = self.entry(T::CLASS)?;
        let (triggernum, info) = entry.td.trigger(trigger).ok_or_else(|| {
            OdeError::Schema(format!("class {:?} has no trigger {trigger:?}", T::CLASS))
        })?;
        if !matches!(info.coupling, CouplingMode::Immediate | CouplingMode::End) {
            return Err(OdeError::Schema(format!(
                "local rule {trigger:?} must use immediate or end coupling, not {}",
                info.coupling
            )));
        }
        let params: Arc<[u8]> = encode_to_vec(params).into();
        let anchor = ptr.oid();

        let mut mask_err: Option<OdeError> = None;
        let outcome = info.fsm.activate(|m| {
            self.eval_local_mask(
                txn,
                &entry.td,
                m,
                anchor,
                &params,
                &info.name,
                None,
                &mut mask_err,
            )
        });
        if let Some(e) = mask_err {
            return Err(e);
        }
        self.metrics().trigger_activations.inc();
        let trigger_name = self.interner.resolve(self.interner.intern(trigger));

        if outcome.accepted {
            let firing = Firing {
                class_sym: entry.sym,
                triggernum,
                trigger_name: Arc::clone(&trigger_name),
                anchor,
                params: Arc::clone(&params),
                anchors: Vec::new().into(),
                coupling: info.coupling,
                event_args: None,
            };
            if let Some(f) = self.schedule(txn, firing) {
                self.fire(txn, &f, true)?;
            }
            if !info.perpetual {
                return Ok(());
            }
        }
        if outcome.status == Advance::Dead {
            return Ok(());
        }
        let instance = LocalInstance {
            class_sym: entry.sym,
            triggernum,
            trigger_name,
            anchor,
            params,
            statenum: outcome.state,
        };
        self.txn_local
            .lock(txn)
            .entry(txn)
            .or_default()
            .local_triggers
            .push(instance);
        self.live_local_rules.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Number of live local rules in this transaction (introspection).
    pub fn local_trigger_count(&self, txn: TxnId) -> usize {
        self.txn_local
            .lock(txn)
            .get(&txn)
            .map(|l| l.local_triggers.len())
            .unwrap_or(0)
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_local_mask(
        &self,
        txn: TxnId,
        td: &crate::metatype::TypeDescriptor,
        mask: ode_events::event::MaskId,
        anchor: Oid,
        params: &[u8],
        trigger_name: &str,
        event_args: Option<&[u8]>,
        slot: &mut Option<OdeError>,
    ) -> bool {
        let Some(f) = td.mask_fn(mask) else {
            *slot = Some(OdeError::Schema(format!(
                "class {:?} has no mask {mask}",
                td.name()
            )));
            return false;
        };
        let mut ctx = crate::context::TriggerCtx {
            db: self,
            txn,
            anchor,
            params,
            trigger_name,
            anchors: &[],
            event_args,
        };
        match f(&mut ctx) {
            Ok(b) => b,
            Err(e) => {
                *slot = Some(e);
                false
            }
        }
    }

    /// Advance the local rules anchored at `anchor` on `event`; called by
    /// `post_event`. Instances are taken out of the scratchpad while mask
    /// code runs (which may re-enter the database) and merged back after.
    pub(crate) fn advance_local_triggers(
        &self,
        txn: TxnId,
        anchor: Oid,
        event: EventId,
        event_args: Option<&[u8]>,
    ) -> Result<Vec<Firing>> {
        let mut instances = {
            let mut locals = self.txn_local.lock(txn);
            match locals.get_mut(&txn) {
                Some(local) if !local.local_triggers.is_empty() => {
                    std::mem::take(&mut local.local_triggers)
                }
                _ => return Ok(Vec::new()),
            }
        };

        let taken = instances.len();
        let mut firings = Vec::new();
        let mut error = None;
        instances.retain_mut(|inst| {
            if error.is_some() || inst.anchor != anchor {
                return true;
            }
            let Ok(entry) = self.entry_sym(inst.class_sym) else {
                return false;
            };
            let Some(info) = entry.td.trigger_by_num(inst.triggernum) else {
                return false;
            };
            let mut mask_err: Option<OdeError> = None;
            let outcome = info.fsm.post(inst.statenum, event, |m| {
                self.eval_local_mask(
                    txn,
                    &entry.td,
                    m,
                    inst.anchor,
                    &inst.params,
                    &info.name,
                    event_args,
                    &mut mask_err,
                )
            });
            self.metrics().fsm_advances.inc();
            if let Some(e) = mask_err {
                error = Some(e);
                return true;
            }
            match outcome.status {
                Advance::Ignored => true,
                Advance::Dead => false,
                Advance::Moved => {
                    inst.statenum = outcome.state;
                    if outcome.accepted {
                        firings.push(Firing {
                            class_sym: inst.class_sym,
                            triggernum: inst.triggernum,
                            trigger_name: Arc::clone(&inst.trigger_name),
                            anchor: inst.anchor,
                            params: Arc::clone(&inst.params),
                            anchors: Vec::new().into(),
                            coupling: info.coupling,
                            event_args: event_args.map(<[u8]>::to_vec),
                        });
                        info.perpetual
                    } else {
                        true
                    }
                }
            }
        });
        let dropped = taken - instances.len();
        if dropped > 0 {
            self.live_local_rules.fetch_sub(dropped, Ordering::Relaxed);
        }

        // Merge back (mask code may have activated more local rules).
        {
            let mut locals = self.txn_local.lock(txn);
            let local = locals.entry(txn).or_default();
            instances.append(&mut local.local_triggers);
            local.local_triggers = instances;
        }
        match error {
            Some(e) => Err(e),
            None => Ok(firings),
        }
    }
}
