//! Symbol interning for class and trigger names.
//!
//! The posting hot path (§5.4.5) resolves the defining class and trigger
//! of every `TriggerState` record it touches. Doing that with owned
//! `String`s means an allocation and a string-keyed map probe per
//! advance; the paper's cost model (§6–§7) has no room for either. Names
//! are therefore interned once — at class registration, activation, or
//! record decode — into dense `u32` [`Sym`]s, and everything in memory
//! (state cache, firings, schema lookups) works with integer ids. The
//! on-disk encodings keep spelling names out, so interning never leaks
//! into persistent layout.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// An interned name. Dense, copyable, and stable for the lifetime of the
/// owning [`Interner`] (i.e. the `Database` session).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Sym(pub u32);

#[derive(Default)]
struct Inner {
    by_name: HashMap<Arc<str>, u32>,
    names: Vec<Arc<str>>,
}

/// A session-scoped name interner. Interning an existing name takes a
/// read lock and one hash probe; no allocation.
#[derive(Default)]
pub(crate) struct Interner {
    inner: RwLock<Inner>,
}

impl Interner {
    /// Intern `name`, returning its symbol (allocates only on first
    /// sight).
    pub fn intern(&self, name: &str) -> Sym {
        if let Some(&id) = self.inner.read().by_name.get(name) {
            return Sym(id);
        }
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_name.get(name) {
            return Sym(id);
        }
        let id = inner.names.len() as u32;
        let shared: Arc<str> = Arc::from(name);
        inner.names.push(Arc::clone(&shared));
        inner.by_name.insert(shared, id);
        Sym(id)
    }

    /// The name behind a symbol. Panics on a symbol from another interner
    /// (impossible through the `Database` API).
    pub fn resolve(&self, sym: Sym) -> Arc<str> {
        Arc::clone(&self.inner.read().names[sym.0 as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_resolvable() {
        let i = Interner::default();
        let a = i.intern("CredCard");
        let b = i.intern("Stock");
        assert_ne!(a, b);
        assert_eq!(i.intern("CredCard"), a);
        assert_eq!(&*i.resolve(a), "CredCard");
        assert_eq!(&*i.resolve(b), "Stock");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let i = Arc::new(Interner::default());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let i = Arc::clone(&i);
                std::thread::spawn(move || {
                    (0..100)
                        .map(|n| i.intern(&format!("name{}", n % 50)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for syms in &all {
            assert_eq!(syms, &all[0], "every thread resolves the same ids");
        }
    }
}
