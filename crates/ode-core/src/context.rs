//! Execution context for trigger masks and actions.
//!
//! When a mask is evaluated (§5.4.2) or an action fired (§5.4.5) the code
//! runs against the trigger's *anchor object* (Ode triggers "are rooted at
//! objects", §7) with the parameters captured at activation time ("instead
//! of collecting and storing basic event parameters, parameters are passed
//! in at trigger activation time", §7).

use crate::database::Database;
use crate::error::{OdeError, Result};
use crate::object::{OdeObject, PersistentPtr};
use ode_storage::codec::{decode_all, encode_to_vec, Decode, Encode};
use ode_storage::{Oid, TxnId};

/// Counters for the trigger run-time (benchmarks and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TriggerStats {
    /// Basic events posted (after index-skip short-circuit).
    pub events_posted: u64,
    /// Per-trigger FSM advances performed.
    pub fsm_advances: u64,
    /// Mask predicate evaluations.
    pub mask_evaluations: u64,
    /// Immediate actions executed.
    pub immediate_firings: u64,
    /// end/dependent/!dependent actions executed.
    pub deferred_firings: u64,
    /// Trigger activations.
    pub activations: u64,
    /// Trigger deactivations (explicit, once-only, or dead).
    pub deactivations: u64,
    /// Detached (dependent/!dependent) actions that failed; their system
    /// transaction was aborted.
    pub detached_failures: u64,
    /// Index lookups skipped thanks to the per-object has-triggers flag
    /// (§5.4.5 footnote 3).
    pub index_skips: u64,
}

/// What a mask or action sees while it runs.
pub struct TriggerCtx<'a> {
    pub(crate) db: &'a Database,
    pub(crate) txn: TxnId,
    pub(crate) anchor: Oid,
    pub(crate) params: &'a [u8],
    pub(crate) trigger_name: &'a str,
    /// Named anchors for inter-object triggers (empty otherwise).
    pub(crate) anchors: &'a [(String, Oid)],
    /// Encoded arguments of the member-function event being processed
    /// (§8 "attributes of events"): available to masks during posting and
    /// to actions of triggers fired by that posting.
    pub(crate) event_args: Option<&'a [u8]>,
}

impl<'a> TriggerCtx<'a> {
    /// The database the trigger lives in.
    pub fn db(&self) -> &'a Database {
        self.db
    }

    /// The transaction the mask/action runs in. For `immediate` and `end`
    /// couplings this is the detecting transaction; for `dependent` and
    /// `!dependent` it is the separate system transaction (§5.5).
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// The anchor object's Oid.
    pub fn anchor_oid(&self) -> Oid {
        self.anchor
    }

    /// The anchor as a typed persistent pointer.
    pub fn anchor<T: OdeObject>(&self) -> PersistentPtr<T> {
        PersistentPtr::from_oid(self.anchor)
    }

    /// Read the anchor object.
    pub fn object<T: OdeObject>(&self) -> Result<T> {
        self.db.read(self.txn, self.anchor::<T>())
    }

    /// Mutate the anchor object in place (no member-function events are
    /// posted; actions that should post events call
    /// [`Database::invoke`] instead).
    pub fn update_object<T: OdeObject>(&self, f: impl FnOnce(&mut T)) -> Result<()> {
        self.db.update_with(self.txn, self.anchor::<T>(), f)
    }

    /// Decode the trigger's activation parameters.
    pub fn params<P: Decode>(&self) -> Result<P> {
        Ok(decode_all(self.params)?)
    }

    /// Raw parameter bytes.
    pub fn raw_params(&self) -> &[u8] {
        self.params
    }

    /// Decode the arguments of the member-function event that caused this
    /// mask evaluation / firing, if the event was posted with arguments
    /// (see `Database::invoke_with_args`). The §8 extension: "allowing
    /// each member function event to look at the parameters passed to the
    /// corresponding member function, at least in masks".
    pub fn event_args<A: Decode>(&self) -> Result<Option<A>> {
        match self.event_args {
            None => Ok(None),
            Some(bytes) => Ok(Some(decode_all(bytes)?)),
        }
    }

    /// Raw encoded event arguments, if any.
    pub fn raw_event_args(&self) -> Option<&[u8]> {
        self.event_args
    }

    /// The trigger's name (e.g. for audit messages).
    pub fn trigger_name(&self) -> &str {
        self.trigger_name
    }

    /// Named anchor of an inter-object trigger.
    pub fn named_anchor(&self, name: &str) -> Result<Oid> {
        self.anchors
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, oid)| *oid)
            .ok_or_else(|| OdeError::Schema(format!("no anchor named {name:?}")))
    }

    /// All named anchors (inter-object triggers).
    pub fn anchors(&self) -> &[(String, Oid)] {
        self.anchors
    }

    /// Abort the surrounding transaction (Ode's `tabort`, which §6 notes
    /// had to be allowed outside static transaction blocks precisely so
    /// trigger actions could use it). Return this from an action:
    ///
    /// ```ignore
    /// return Err(ctx.tabort("Over Limit"));
    /// ```
    pub fn tabort(&self, reason: &str) -> OdeError {
        OdeError::tabort(reason)
    }
}

/// Encode trigger activation parameters (helper shared by activation
/// paths).
pub fn encode_params<P: Encode>(params: &P) -> Vec<u8> {
    encode_to_vec(params)
}
