//! Monitored classes — the §8 extension: "we are considering supplying
//! *monitored classes*, non-persistent classes with triggers — allowing
//! non-persistent classes to use triggers, while maintaining our design
//! principle that only objects that have access to trigger functionality
//! pay any trigger overhead."
//!
//! A [`MonitoredSpace<T>`] owns plain Rust values of one class and runs
//! the full composite-event machinery over them — the same expression
//! language and FSM compiler as persistent triggers — entirely in memory:
//! no database, no transactions, no locks, no durability. Masks see `&T`;
//! actions get `&mut T`. Coupling modes do not apply (there is no
//! transaction to couple to); every firing is immediate.
//!
//! Ordinary (unmonitored) Rust values of the same type never touch any of
//! this, preserving the pay-for-what-you-use principle.

use crate::error::{OdeError, Result};
use ode_events::ast::Alphabet;
use ode_events::dfa::Dfa;
use ode_events::event::{BasicEvent, EventId, EventTime, MaskId};
use ode_events::machine::Advance;
use ode_events::registry::EventRegistry;
use parking_lot::Mutex;
use std::marker::PhantomData;
use std::sync::Arc;

type MonMask<T> = Arc<dyn Fn(&T, &[u8]) -> bool + Send + Sync>;
type MonAction<T> = Arc<dyn Fn(&mut T, &[u8]) -> Result<()> + Send + Sync>;

struct MonTrigger<T> {
    name: String,
    fsm: Dfa,
    action: MonAction<T>,
    perpetual: bool,
}

/// The compiled definition of a monitored class.
pub struct MonitoredClass<T> {
    name: String,
    alphabet: Alphabet,
    events: Vec<(BasicEvent, EventId)>,
    masks: Vec<MonMask<T>>,
    triggers: Vec<MonTrigger<T>>,
}

/// Builder for [`MonitoredClass`].
pub struct MonitoredClassBuilder<T> {
    name: String,
    events: Vec<BasicEvent>,
    masks: Vec<(String, MonMask<T>)>,
    triggers: Vec<(String, String, bool, MonAction<T>)>,
}

impl<T> MonitoredClassBuilder<T> {
    /// Start defining a monitored class.
    pub fn new(name: &str) -> Self {
        MonitoredClassBuilder {
            name: name.to_string(),
            events: Vec::new(),
            masks: Vec::new(),
            triggers: Vec::new(),
        }
    }

    /// Declare `after <method>`.
    pub fn after_event(mut self, method: &str) -> Self {
        self.events.push(BasicEvent::after(method));
        self
    }

    /// Declare `before <method>`.
    pub fn before_event(mut self, method: &str) -> Self {
        self.events.push(BasicEvent::before(method));
        self
    }

    /// Declare a user-defined event.
    pub fn user_event(mut self, name: &str) -> Self {
        self.events.push(BasicEvent::user(name));
        self
    }

    /// Define a mask predicate over the object and the trigger parameters.
    pub fn mask(
        mut self,
        name: &str,
        f: impl Fn(&T, &[u8]) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.masks.push((name.to_string(), Arc::new(f)));
        self
    }

    /// Define a trigger (always immediate; `perpetual` as in §4).
    pub fn trigger(
        mut self,
        name: &str,
        expr: &str,
        perpetual: crate::class::Perpetual,
        action: impl Fn(&mut T, &[u8]) -> Result<()> + Send + Sync + 'static,
    ) -> Self {
        self.triggers.push((
            name.to_string(),
            expr.to_string(),
            perpetual == crate::class::Perpetual::Yes,
            Arc::new(action),
        ));
        self
    }

    /// Intern events and compile the trigger FSMs.
    pub fn build(self, registry: &EventRegistry) -> Result<Arc<MonitoredClass<T>>> {
        let mut alphabet = Alphabet::new();
        let mut events = Vec::new();
        for event in self.events {
            if events.iter().any(|(e, _)| *e == event) {
                continue;
            }
            let id = registry.intern(&self.name, &event);
            alphabet.add_event(id, &event.key());
            events.push((event, id));
        }
        let mut masks = Vec::new();
        for (name, f) in self.masks {
            alphabet.add_mask(&name);
            masks.push(f);
        }
        let mut triggers = Vec::new();
        for (name, expr, perpetual, action) in self.triggers {
            let te = ode_events::parser::parse(&expr, &alphabet)?;
            triggers.push(MonTrigger {
                name,
                fsm: Dfa::compile(&te, &alphabet),
                action,
                perpetual,
            });
        }
        Ok(Arc::new(MonitoredClass {
            name: self.name,
            alphabet,
            events,
            masks,
            triggers,
        }))
    }
}

impl<T> MonitoredClass<T> {
    /// Class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The class alphabet (for display).
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn event_id(&self, event: &BasicEvent) -> Option<EventId> {
        self.events
            .iter()
            .find(|(e, _)| e == event)
            .map(|(_, id)| *id)
    }

    fn trigger(&self, name: &str) -> Option<(usize, &MonTrigger<T>)> {
        self.triggers
            .iter()
            .enumerate()
            .find(|(_, t)| t.name == name)
    }
}

/// Handle to a monitored object inside a [`MonitoredSpace`].
pub struct MonitoredPtr<T> {
    id: usize,
    _type: PhantomData<fn() -> T>,
}

impl<T> Clone for MonitoredPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for MonitoredPtr<T> {}
impl<T> std::fmt::Debug for MonitoredPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MonitoredPtr({})", self.id)
    }
}

struct MonInstance {
    triggernum: usize,
    statenum: u32,
    params: Vec<u8>,
    alive: bool,
}

struct Slot<T> {
    value: T,
    instances: Vec<MonInstance>,
}

/// A space of monitored (volatile) objects of one class.
pub struct MonitoredSpace<T> {
    class: Arc<MonitoredClass<T>>,
    slots: Mutex<Vec<Option<Slot<T>>>>,
}

impl<T> MonitoredSpace<T> {
    /// Create a space for a monitored class.
    pub fn new(class: Arc<MonitoredClass<T>>) -> MonitoredSpace<T> {
        MonitoredSpace {
            class,
            slots: Mutex::new(Vec::new()),
        }
    }

    /// Add an object to the space.
    pub fn create(&self, value: T) -> MonitoredPtr<T> {
        let mut slots = self.slots.lock();
        let id = slots.len();
        slots.push(Some(Slot {
            value,
            instances: Vec::new(),
        }));
        MonitoredPtr {
            id,
            _type: PhantomData,
        }
    }

    /// Remove an object (its triggers die with it).
    pub fn destroy(&self, ptr: MonitoredPtr<T>) -> Result<T> {
        self.slots.lock()[ptr.id]
            .take()
            .map(|s| s.value)
            .ok_or_else(|| OdeError::Schema(format!("monitored object {} is gone", ptr.id)))
    }

    /// Read the object through a closure.
    pub fn with<R>(&self, ptr: MonitoredPtr<T>, f: impl FnOnce(&T) -> R) -> Result<R> {
        let slots = self.slots.lock();
        let slot = slots
            .get(ptr.id)
            .and_then(|s| s.as_ref())
            .ok_or_else(|| OdeError::Schema(format!("monitored object {} is gone", ptr.id)))?;
        Ok(f(&slot.value))
    }

    /// Activate a trigger of the monitored class on an object.
    pub fn activate<P: ode_storage::codec::Encode>(
        &self,
        ptr: MonitoredPtr<T>,
        trigger: &str,
        params: &P,
    ) -> Result<()> {
        let (triggernum, info) = self.class.trigger(trigger).ok_or_else(|| {
            OdeError::Schema(format!(
                "monitored class {:?} has no trigger {trigger:?}",
                self.class.name
            ))
        })?;
        let params = ode_storage::codec::encode_to_vec(params);
        let mut slots = self.slots.lock();
        let slot = slots
            .get_mut(ptr.id)
            .and_then(|s| s.as_mut())
            .ok_or_else(|| OdeError::Schema(format!("monitored object {} is gone", ptr.id)))?;
        let class = &self.class;
        let outcome = info
            .fsm
            .activate(|m| Self::eval_mask(class, &slot.value, m, &params));
        let mut fire_now = false;
        match outcome.status {
            Advance::Dead => return Ok(()),
            _ => {
                if outcome.accepted {
                    fire_now = true;
                }
            }
        }
        if !fire_now || info.perpetual {
            slot.instances.push(MonInstance {
                triggernum,
                statenum: outcome.state,
                params: params.clone(),
                alive: true,
            });
        }
        if fire_now {
            let action = Arc::clone(&info.action);
            let value = &mut slot.value;
            action(value, &params)?;
        }
        Ok(())
    }

    fn eval_mask(class: &MonitoredClass<T>, value: &T, m: MaskId, params: &[u8]) -> bool {
        class
            .masks
            .get(m.0 as usize)
            .map(|f| f(value, params))
            .unwrap_or(false)
    }

    /// Invoke a member function: posts `before`/`after` events around the
    /// body (the monitored analogue of [`crate::Database::invoke`]).
    pub fn invoke<R>(
        &self,
        ptr: MonitoredPtr<T>,
        method: &str,
        body: impl FnOnce(&mut T) -> Result<R>,
    ) -> Result<R> {
        if let Some(e) = self.class.event_id(&BasicEvent::Member {
            name: method.to_string(),
            time: EventTime::Before,
        }) {
            self.post(ptr, e)?;
        }
        let result = {
            let mut slots = self.slots.lock();
            let slot = slots
                .get_mut(ptr.id)
                .and_then(|s| s.as_mut())
                .ok_or_else(|| OdeError::Schema(format!("monitored object {} is gone", ptr.id)))?;
            body(&mut slot.value)?
        };
        if let Some(e) = self.class.event_id(&BasicEvent::Member {
            name: method.to_string(),
            time: EventTime::After,
        }) {
            self.post(ptr, e)?;
        }
        Ok(result)
    }

    /// Post a user-defined event to an object.
    pub fn post_user_event(&self, ptr: MonitoredPtr<T>, event: &str) -> Result<()> {
        let id = self
            .class
            .event_id(&BasicEvent::user(event))
            .ok_or_else(|| {
                OdeError::Schema(format!(
                    "event {event:?} is not declared by monitored class {}",
                    self.class.name
                ))
            })?;
        self.post(ptr, id)
    }

    /// Advance every live instance on the object; fire after all posting
    /// (the §5.4.5 rule, same as the persistent run-time).
    fn post(&self, ptr: MonitoredPtr<T>, event: EventId) -> Result<()> {
        let mut slots = self.slots.lock();
        let slot = slots
            .get_mut(ptr.id)
            .and_then(|s| s.as_mut())
            .ok_or_else(|| OdeError::Schema(format!("monitored object {} is gone", ptr.id)))?;
        let class = &self.class;
        let mut to_fire: Vec<(MonAction<T>, Vec<u8>)> = Vec::new();
        let value_ptr = &slot.value;
        for inst in &mut slot.instances {
            if !inst.alive {
                continue;
            }
            let info = &class.triggers[inst.triggernum];
            let outcome = info.fsm.post(inst.statenum, event, |m| {
                Self::eval_mask(class, value_ptr, m, &inst.params)
            });
            match outcome.status {
                Advance::Ignored => {}
                Advance::Dead => inst.alive = false,
                Advance::Moved => {
                    inst.statenum = outcome.state;
                    if outcome.accepted {
                        to_fire.push((Arc::clone(&info.action), inst.params.clone()));
                        if !info.perpetual {
                            inst.alive = false;
                        }
                    }
                }
            }
        }
        slot.instances.retain(|i| i.alive);
        for (action, params) in to_fire {
            action(&mut slot.value, &params)?;
        }
        Ok(())
    }

    /// Live trigger instances on an object.
    pub fn active_triggers(&self, ptr: MonitoredPtr<T>) -> usize {
        self.slots.lock()[ptr.id]
            .as_ref()
            .map(|s| s.instances.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::Perpetual;

    #[derive(Debug, Clone, PartialEq)]
    struct Session {
        failures: u32,
        locked: bool,
    }

    fn class(registry: &EventRegistry) -> Arc<MonitoredClass<Session>> {
        MonitoredClassBuilder::<Session>::new("Session")
            .after_event("Login")
            .user_event("Reset")
            .mask("Failed", |s, _| s.failures > 0)
            .trigger(
                // Three consecutive failing logins lock the session.
                "Lockout",
                "(after Login & Failed()), (after Login & Failed()), (after Login & Failed())",
                Perpetual::Yes,
                |s, _| {
                    s.locked = true;
                    Ok(())
                },
            )
            .build(registry)
            .unwrap()
    }

    #[test]
    fn monitored_triggers_fire_on_volatile_objects() {
        let registry = EventRegistry::new();
        let space = MonitoredSpace::new(class(&registry));
        let s = space.create(Session {
            failures: 0,
            locked: false,
        });
        space.activate(s, "Lockout", &()).unwrap();

        let fail_login = || {
            space
                .invoke(s, "Login", |sess| {
                    sess.failures += 1;
                    Ok(())
                })
                .unwrap();
        };
        fail_login();
        fail_login();
        assert!(!space.with(s, |sess| sess.locked).unwrap());
        fail_login();
        assert!(space.with(s, |sess| sess.locked).unwrap());
    }

    #[test]
    fn successful_login_breaks_the_sequence() {
        let registry = EventRegistry::new();
        let space = MonitoredSpace::new(class(&registry));
        let s = space.create(Session {
            failures: 0,
            locked: false,
        });
        space.activate(s, "Lockout", &()).unwrap();
        space
            .invoke(s, "Login", |sess| {
                sess.failures += 1;
                Ok(())
            })
            .unwrap();
        space
            .invoke(s, "Login", |sess| {
                sess.failures = 0; // success resets
                Ok(())
            })
            .unwrap();
        space
            .invoke(s, "Login", |sess| {
                sess.failures += 1;
                Ok(())
            })
            .unwrap();
        assert!(!space.with(s, |sess| sess.locked).unwrap());
    }

    #[test]
    fn unactivated_objects_pay_nothing() {
        let registry = EventRegistry::new();
        let space = MonitoredSpace::new(class(&registry));
        let s = space.create(Session {
            failures: 9,
            locked: false,
        });
        // No activation: the invoke advances nothing, fires nothing.
        space.invoke(s, "Login", |_| Ok(())).unwrap();
        assert_eq!(space.active_triggers(s), 0);
        assert!(!space.with(s, |sess| sess.locked).unwrap());
    }

    #[test]
    fn user_events_and_destroy() {
        let registry = EventRegistry::new();
        let space = MonitoredSpace::new(class(&registry));
        let s = space.create(Session {
            failures: 0,
            locked: false,
        });
        space.activate(s, "Lockout", &()).unwrap();
        assert_eq!(space.active_triggers(s), 1);
        space.post_user_event(s, "Reset").unwrap();
        assert!(space.post_user_event(s, "Nope").is_err());
        let val = space.destroy(s).unwrap();
        assert_eq!(val.failures, 0);
        assert!(space.with(s, |_| ()).is_err());
        assert!(space.invoke(s, "Login", |_| Ok(())).is_err());
    }

    #[test]
    fn per_object_instances_are_independent() {
        let registry = EventRegistry::new();
        let space = MonitoredSpace::new(class(&registry));
        let a = space.create(Session {
            failures: 1,
            locked: false,
        });
        let b = space.create(Session {
            failures: 1,
            locked: false,
        });
        space.activate(a, "Lockout", &()).unwrap();
        // Only `a` is monitored.
        for _ in 0..3 {
            space.invoke(a, "Login", |_| Ok(())).unwrap();
            space.invoke(b, "Login", |_| Ok(())).unwrap();
        }
        assert!(space.with(a, |s| s.locked).unwrap());
        assert!(!space.with(b, |s| s.locked).unwrap());
    }
}
