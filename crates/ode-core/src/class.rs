//! Defining classes with events and triggers — the O++ compiler's job,
//! exposed as a builder.
//!
//! The paper's running example (§4):
//!
//! ```text
//! persistent class CredCard {
//!     ...
//!     event after Buy, after PayBill, BigBuy;
//!     trigger DenyCredit() : perpetual after Buy & (currBal > credLim)
//!         ==> { BlackMark("Over Limit", today()); tabort; }
//!     trigger AutoRaiseLimit(float amount) :
//!         relative((after Buy & MoreCred()), after PayBill)
//!         ==> RaiseLimit(amount);
//! };
//! ```
//!
//! becomes:
//!
//! ```ignore
//! let cred_card = ClassBuilder::new("CredCard")
//!     .after_event("Buy")
//!     .after_event("PayBill")
//!     .user_event("BigBuy")
//!     .mask("OverLimit", |ctx| { let c: CredCard = ctx.object()?; Ok(c.curr_bal > c.cred_lim) })
//!     .mask("MoreCred",  |ctx| { ... })
//!     .trigger("DenyCredit", "after Buy & OverLimit()",
//!              CouplingMode::Immediate, Perpetual::Yes,
//!              |ctx| { ...; Err(ctx.tabort("Over Limit")) })
//!     .trigger("AutoRaiseLimit", "relative((after Buy & MoreCred()), after PayBill)",
//!              CouplingMode::Immediate, Perpetual::No,
//!              |ctx| { let amount: f32 = ctx.params()?; ... })
//!     .build(db.registry())?;
//! ```
//!
//! `build` does what the O++ compiler did every time it compiled a program
//! (§5.1.3): intern the declared events in the run-time registry (§5.2)
//! and compile each trigger's event expression into an FSM.

use crate::context::TriggerCtx;
use crate::error::{OdeError, Result};
use crate::metatype::{ActionFn, CouplingMode, MaskFn, TriggerInfo, TypeDescriptor};
use ode_events::ast::Alphabet;
use ode_events::dfa::Dfa;
use ode_events::event::{BasicEvent, EventId};
use ode_events::parser::parse;
use ode_events::registry::EventRegistry;
use std::sync::Arc;

/// Whether a trigger stays active after firing (§4: "because the trigger
/// is marked perpetual, it remains in force after activation until
/// explicitly deactivated").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Perpetual {
    /// Once-only: deactivated after its first firing.
    No,
    /// Perpetual: keeps firing until explicitly deactivated.
    Yes,
}

struct PendingTrigger {
    name: String,
    expr: String,
    coupling: CouplingMode,
    perpetual: Perpetual,
    action: ActionFn,
}

/// Builds a [`TypeDescriptor`].
pub struct ClassBuilder {
    name: String,
    bases: Vec<Arc<TypeDescriptor>>,
    events: Vec<BasicEvent>,
    masks: Vec<(String, MaskFn)>,
    triggers: Vec<PendingTrigger>,
    txn_events: bool,
}

impl ClassBuilder {
    /// Start defining a class.
    pub fn new(name: &str) -> ClassBuilder {
        ClassBuilder {
            name: name.to_string(),
            bases: Vec::new(),
            events: Vec::new(),
            masks: Vec::new(),
            triggers: Vec::new(),
            txn_events: false,
        }
    }

    /// Inherit from a base class: its declared events keep their ids (the
    /// §6 numbering lesson) and its triggers remain activatable on objects
    /// of this class.
    pub fn base(mut self, base: &Arc<TypeDescriptor>) -> Self {
        self.bases.push(Arc::clone(base));
        self
    }

    /// Declare an arbitrary basic event.
    pub fn event(mut self, event: BasicEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Declare `after <method>`.
    pub fn after_event(self, method: &str) -> Self {
        self.event(BasicEvent::after(method))
    }

    /// Declare `before <method>`.
    pub fn before_event(self, method: &str) -> Self {
        self.event(BasicEvent::before(method))
    }

    /// Declare a user-defined event.
    pub fn user_event(self, name: &str) -> Self {
        self.event(BasicEvent::user(name))
    }

    /// Declare a timer event (timed-trigger extension, §8).
    pub fn timer_event(self, name: &str) -> Self {
        self.event(BasicEvent::Timer {
            name: name.to_string(),
        })
    }

    /// Declare interest in `before tcomplete` and `before tabort` (§5.5).
    pub fn txn_events(mut self) -> Self {
        self.txn_events = true;
        self
    }

    /// Define a mask predicate, usable in trigger expressions as
    /// `& <name>()`.
    pub fn mask(
        mut self,
        name: &str,
        f: impl for<'a, 'b> Fn(&'a mut TriggerCtx<'b>) -> Result<bool> + Send + Sync + 'static,
    ) -> Self {
        self.masks.push((name.to_string(), Arc::new(f)));
        self
    }

    /// Define a trigger: name, event expression (concrete syntax of
    /// [`ode_events::parser`]), coupling mode, perpetuity, and action.
    pub fn trigger(
        mut self,
        name: &str,
        expr: &str,
        coupling: CouplingMode,
        perpetual: Perpetual,
        action: impl for<'a, 'b> Fn(&'a mut TriggerCtx<'b>) -> Result<()> + Send + Sync + 'static,
    ) -> Self {
        self.triggers.push(PendingTrigger {
            name: name.to_string(),
            expr: expr.to_string(),
            coupling,
            perpetual,
            action: Arc::new(action),
        });
        self
    }

    /// Resolve events, compile trigger FSMs, and produce the descriptor.
    pub fn build(self, registry: &EventRegistry) -> Result<Arc<TypeDescriptor>> {
        let mut alphabet = Alphabet::new();
        let mut all_events: Vec<(BasicEvent, EventId, String)> = Vec::new();

        // Inherited events first, keeping their defining class and id.
        for base in &self.bases {
            for (event, id, defining) in base.events() {
                match all_events.iter().find(|(e, _, _)| e == event) {
                    None => {
                        alphabet.add_event(*id, &event.key());
                        all_events.push((event.clone(), *id, defining.clone()));
                    }
                    Some((_, existing, _)) if existing == id => {} // diamond
                    Some((_, _, other)) => {
                        return Err(OdeError::Schema(format!(
                            "class {:?}: event {:?} inherited from both {:?} and {:?}",
                            self.name,
                            event.key(),
                            other,
                            defining
                        )));
                    }
                }
            }
        }

        // Own declarations.
        let mut own = self.events;
        if self.txn_events {
            own.push(BasicEvent::TxnComplete);
            own.push(BasicEvent::TxnAbort);
        }
        for event in own {
            if all_events.iter().any(|(e, _, _)| *e == event) {
                // Redeclaring an inherited event is a no-op (same id).
                continue;
            }
            let id = registry.intern(&self.name, &event);
            alphabet.add_event(id, &event.key());
            all_events.push((event, id, self.name.clone()));
        }

        // Masks (own only: inherited triggers run through their own
        // descriptor, so base masks never need re-resolution here).
        for (name, _) in &self.masks {
            alphabet.add_mask(name);
        }

        // Compile the triggers — "we chose to compile an FSM every time"
        // (§5.1.3).
        let mut triggers = Vec::with_capacity(self.triggers.len());
        for pending in self.triggers {
            let te = parse(&pending.expr, &alphabet)?;
            let fsm = Dfa::compile_observed(&te, &alphabet, &pending.name, registry.metrics());
            triggers.push(TriggerInfo {
                name: pending.name,
                fsm,
                action: pending.action,
                perpetual: pending.perpetual == Perpetual::Yes,
                coupling: pending.coupling,
                event_source: pending.expr,
            });
        }

        Ok(Arc::new(TypeDescriptor::new(
            self.name,
            self.bases,
            alphabet,
            all_events,
            self.masks,
            triggers,
            self.txn_events,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_events::event::EventTime;

    #[test]
    fn cred_card_descriptor_shape() {
        let reg = EventRegistry::new();
        let td = ClassBuilder::new("CredCard")
            .user_event("BigBuy")
            .after_event("PayBill")
            .after_event("Buy")
            .mask("MoreCred", |_| Ok(true))
            .trigger(
                "AutoRaiseLimit",
                "relative((after Buy & MoreCred()), after PayBill)",
                CouplingMode::Immediate,
                Perpetual::No,
                |_| Ok(()),
            )
            .build(&reg)
            .unwrap();
        assert_eq!(td.name(), "CredCard");
        assert_eq!(td.events().len(), 3);
        let (num, info) = td.trigger("AutoRaiseLimit").unwrap();
        assert_eq!(num, 0);
        assert_eq!(info.fsm.len(), 4, "Figure 1 reproduced in the descriptor");
        assert!(!info.perpetual);
        assert!(td.member_event("Buy", EventTime::After).is_some());
        assert!(td.member_event("Buy", EventTime::Before).is_none());
    }

    #[test]
    fn bad_expression_fails_build() {
        let reg = EventRegistry::new();
        let result = ClassBuilder::new("C")
            .after_event("f")
            .trigger(
                "T",
                "after g",
                CouplingMode::Immediate,
                Perpetual::No,
                |_| Ok(()),
            )
            .build(&reg);
        assert!(matches!(result, Err(OdeError::Parse(_))));
    }

    #[test]
    fn inherited_events_keep_base_ids() {
        let reg = EventRegistry::new();
        let base = ClassBuilder::new("Base")
            .after_event("f")
            .build(&reg)
            .unwrap();
        let derived = ClassBuilder::new("Derived")
            .base(&base)
            .after_event("g")
            .build(&reg)
            .unwrap();
        assert_eq!(
            base.member_event("f", EventTime::After),
            derived.member_event("f", EventTime::After)
        );
        assert!(derived.member_event("g", EventTime::After).is_some());
        assert!(base.member_event("g", EventTime::After).is_none());
    }

    #[test]
    fn diamond_inheritance_is_fine_conflicts_are_not() {
        let reg = EventRegistry::new();
        let root = ClassBuilder::new("Root")
            .after_event("f")
            .build(&reg)
            .unwrap();
        let left = ClassBuilder::new("Left").base(&root).build(&reg).unwrap();
        let right = ClassBuilder::new("Right").base(&root).build(&reg).unwrap();
        // Diamond: Root's `after f` reaches Bottom twice with the same id.
        let bottom = ClassBuilder::new("Bottom")
            .base(&left)
            .base(&right)
            .build(&reg)
            .unwrap();
        assert_eq!(
            bottom.member_event("f", EventTime::After),
            root.member_event("f", EventTime::After)
        );
        // Conflict: two unrelated bases declare `after f` (distinct ids) —
        // exactly the multiple-inheritance ambiguity §6 describes.
        let a = ClassBuilder::new("A").after_event("f").build(&reg).unwrap();
        let b = ClassBuilder::new("B").after_event("f").build(&reg).unwrap();
        let result = ClassBuilder::new("AB").base(&a).base(&b).build(&reg);
        assert!(matches!(result, Err(OdeError::Schema(_))));
    }

    #[test]
    fn txn_events_declared_once_across_hierarchy() {
        let reg = EventRegistry::new();
        let base = ClassBuilder::new("Base").txn_events().build(&reg).unwrap();
        let derived = ClassBuilder::new("Derived")
            .base(&base)
            .txn_events()
            .build(&reg)
            .unwrap();
        assert!(derived.wants_txn_events());
        // The derived class reuses the inherited event id.
        assert_eq!(derived.txn_event_ids(true).len(), 1);
        assert_eq!(derived.txn_event_ids(false).len(), 1);
        assert_eq!(derived.txn_event_ids(true), base.txn_event_ids(true));
    }

    #[test]
    fn triggers_can_use_inherited_events() {
        let reg = EventRegistry::new();
        let base = ClassBuilder::new("Base")
            .after_event("f")
            .build(&reg)
            .unwrap();
        let derived = ClassBuilder::new("Derived")
            .base(&base)
            .user_event("Ping")
            .trigger(
                "T",
                "after f, Ping",
                CouplingMode::Immediate,
                Perpetual::No,
                |_| Ok(()),
            )
            .build(&reg)
            .unwrap();
        assert!(derived.trigger("T").is_some());
    }
}
