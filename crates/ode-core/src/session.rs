//! Per-client state: the [`Session`].
//!
//! Everything the embedded API threads through method arguments — which
//! database, which transaction — gathered into one object. One session
//! per client (the `ode-server` wire layer creates one per connection);
//! sessions are not `Sync` and are driven from a single thread.
//!
//! A session owns at most one open transaction. Statements executed
//! through [`Session::execute`](crate::ddl) run inside it when open, or
//! in a per-statement autocommit transaction otherwise. Read-only
//! sessionized transactions ([`Session::begin_read_only`]) get the MVCC
//! snapshot path: reads take no locks and cannot deadlock.

use crate::database::Database;
use crate::engine::Engine;
use crate::error::{OdeError, Result};
use ode_storage::{CommitTicket, TxnId};
use std::collections::HashMap;
use std::sync::Arc;

/// Bound on the transparent text-keyed statement cache; when full it is
/// cleared wholesale (statement texts repeat heavily or not at all, so
/// an LRU buys nothing over this).
pub(crate) const STMT_CACHE_CAP: usize = 512;

/// A commit whose durability wait was deferred
/// ([`Session::set_defer_commits`]): logically committed, locks
/// released, but not yet acknowledged-durable. The holder must call
/// [`Database::commit_wait`] (directly or via [`Session::commit_wait_pending`])
/// before acknowledging the statement to the client.
pub struct PendingCommit {
    /// The database the transaction committed against.
    pub db: Arc<Database>,
    /// The durability ticket from [`Database::commit_start`].
    pub ticket: CommitTicket,
}

/// How a session decides which statements to trace (set by the `TRACE`
/// statement; `EXPLAIN` and a configured slow-statement log force
/// tracing regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Trace nothing (the default; spans cost one dead flag read).
    Off,
    /// Trace every statement.
    On,
    /// Trace every n-th statement.
    Sample(u64),
}

/// A client's connection state: engine, current database, open
/// transaction, span tracing.
pub struct Session {
    engine: Arc<Engine>,
    current: Option<(String, Arc<Database>)>,
    txn: Option<TxnId>,
    /// This session's private span ring — sessions never contend on a
    /// shared trace structure.
    pub(crate) trace_buf: Arc<ode_trace::TraceBuffer>,
    pub(crate) trace_mode: TraceMode,
    /// Statements executed since the last sampled trace.
    pub(crate) trace_countdown: u64,
    /// Rendered span tree of the most recent traced statement
    /// (`SHOW TRACE` returns it).
    pub(crate) last_trace: Option<String>,
    /// When true, autocommit statements and explicit `COMMIT`s stop at
    /// [`Database::commit_start`] and stash the ticket in
    /// `pending_commit` instead of blocking on durability.
    defer_commits: bool,
    /// The deferred commit of the last statement, if any (at most one:
    /// the wire layer takes it after every statement).
    pending_commit: Option<PendingCommit>,
    /// Named statements (`PREPARE <name> AS …`).
    pub(crate) prepared: HashMap<String, crate::ddl::Statement>,
    /// Transparent text-keyed parse cache ([`Session::execute`] consults
    /// it before running the DDL parser).
    pub(crate) stmt_cache: HashMap<String, crate::ddl::Statement>,
    /// `false` disables the transparent cache (named `PREPARE`/`EXECUTE`
    /// keeps working).
    pub(crate) stmt_cache_enabled: bool,
}

impl Session {
    /// A fresh session with no current database and no open transaction.
    pub fn new(engine: Arc<Engine>) -> Session {
        engine.stats().session_opened();
        Session {
            engine,
            current: None,
            txn: None,
            trace_buf: Arc::new(ode_trace::TraceBuffer::new()),
            trace_mode: TraceMode::Off,
            trace_countdown: 0,
            last_trace: None,
            defer_commits: false,
            pending_commit: None,
            prepared: HashMap::new(),
            stmt_cache: HashMap::new(),
            stmt_cache_enabled: true,
        }
    }

    /// Defer durability waits: with this set, a statement that commits
    /// (autocommit or explicit `COMMIT`) returns as soon as the commit
    /// is *logical* and parks its [`PendingCommit`] on the session. The
    /// caller must resolve it (see [`Session::take_pending_commit`])
    /// before acknowledging the statement — the wire layer batches many
    /// sessions' tickets onto one group-commit flush this way.
    pub fn set_defer_commits(&mut self, defer: bool) {
        self.defer_commits = defer;
    }

    /// Enable/disable the transparent text-keyed statement cache.
    pub fn set_stmt_cache(&mut self, enabled: bool) {
        self.stmt_cache_enabled = enabled;
        if !enabled {
            self.stmt_cache.clear();
        }
    }

    /// Take the deferred commit of the last statement, if it produced
    /// one. The caller owns the durability wait from here.
    pub fn take_pending_commit(&mut self) -> Option<PendingCommit> {
        self.pending_commit.take()
    }

    /// Resolve any deferred commit inline (used on paths that cannot
    /// hand the ticket to a scheduler, and before stashing a new one).
    pub fn commit_wait_pending(&mut self) -> Result<()> {
        match self.pending_commit.take() {
            Some(pending) => pending.db.commit_wait(pending.ticket),
            None => Ok(()),
        }
    }

    /// Stash a deferred commit, resolving any previous one first so at
    /// most one ticket is ever parked on the session.
    fn stash_pending(&mut self, db: Arc<Database>, ticket: CommitTicket) -> Result<()> {
        self.commit_wait_pending()?;
        self.pending_commit = Some(PendingCommit { db, ticket });
        Ok(())
    }

    /// The engine this session talks to.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The current database name, if one was selected.
    pub fn current_database(&self) -> Option<&str> {
        self.current.as_ref().map(|(n, _)| n.as_str())
    }

    /// The current database handle; `USE <name>` (or
    /// [`Session::use_database`]) selects one.
    pub fn database(&self) -> Result<&Arc<Database>> {
        self.current
            .as_ref()
            .map(|(_, db)| db)
            .ok_or_else(|| OdeError::Schema("no database selected (USE <name> first)".into()))
    }

    /// Select the current database. Refused while a transaction is open
    /// (it belongs to the previous database).
    pub fn use_database(&mut self, name: &str) -> Result<()> {
        if self.txn.is_some() {
            return Err(OdeError::Schema(
                "cannot switch databases inside a transaction".into(),
            ));
        }
        let db = self.engine.database(name)?;
        self.current = Some((name.to_string(), db));
        Ok(())
    }

    /// The open transaction, if any.
    pub fn txn(&self) -> Option<TxnId> {
        self.txn
    }

    /// Begin a read-write transaction; at most one per session.
    pub fn begin(&mut self) -> Result<TxnId> {
        if self.txn.is_some() {
            return Err(OdeError::Schema("transaction already open".into()));
        }
        let txn = self.database()?.begin()?;
        self.txn = Some(txn);
        self.engine.stats().txn_opened();
        Ok(txn)
    }

    /// Begin a read-only MVCC snapshot transaction (PR 6 semantics: no
    /// locks, no deadlocks, consistent commit point).
    pub fn begin_read_only(&mut self) -> Result<TxnId> {
        if self.txn.is_some() {
            return Err(OdeError::Schema("transaction already open".into()));
        }
        let txn = self.database()?.begin_read_only()?;
        self.txn = Some(txn);
        self.engine.stats().txn_opened();
        Ok(txn)
    }

    /// Commit the open transaction (running its end/dependent/!dependent
    /// firings per the coupling rules). The session transaction is closed
    /// whether the commit succeeds or not.
    pub fn commit(&mut self) -> Result<()> {
        let txn = self
            .txn
            .take()
            .ok_or_else(|| OdeError::Schema("no open transaction".into()))?;
        self.engine.stats().txn_closed();
        let db = Arc::clone(self.database()?);
        if self.defer_commits {
            let ticket = db.commit_start(txn)?;
            return self.stash_pending(db, ticket);
        }
        db.commit(txn)
    }

    /// Abort the open transaction if there is one — the tabort rule for
    /// errors that happen before a statement ever reaches the executor
    /// (parse errors): a failed statement takes the whole transaction
    /// down, whatever stage it failed at.
    pub(crate) fn abort_open_txn(&mut self) {
        if let Some(txn) = self.txn.take() {
            self.engine.stats().txn_closed();
            if let Ok(db) = self.database() {
                let _ = db.abort(txn);
            }
        }
    }

    /// Abort the open transaction.
    pub fn abort(&mut self) -> Result<()> {
        let txn = self
            .txn
            .take()
            .ok_or_else(|| OdeError::Schema("no open transaction".into()))?;
        self.engine.stats().txn_closed();
        self.database()?.abort(txn)
    }

    /// Run `f` in the session's transaction scope: inside the open
    /// transaction when there is one (an error aborts it — `tabort`
    /// semantics take the whole transaction down), or in a per-call
    /// autocommit transaction otherwise.
    pub fn with_session_txn<R>(
        &mut self,
        f: impl FnOnce(&Database, TxnId) -> Result<R>,
    ) -> Result<R> {
        let db = Arc::clone(self.database()?);
        match self.txn {
            Some(txn) => match f(&db, txn) {
                Ok(value) => Ok(value),
                Err(e) => {
                    self.txn = None;
                    self.engine.stats().txn_closed();
                    let _ = db.abort(txn);
                    Err(e)
                }
            },
            None if self.defer_commits => {
                // The autocommit analogue of `Database::with_txn`, but
                // stopping at the logical commit and parking the ticket.
                let txn = db.begin()?;
                match f(&db, txn) {
                    Ok(value) => {
                        let ticket = db.commit_start(txn)?;
                        self.stash_pending(db, ticket)?;
                        Ok(value)
                    }
                    Err(e) => {
                        let _ = db.abort(txn);
                        Err(e)
                    }
                }
            }
            None => db.with_txn(|txn| f(&db, txn)),
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.engine.stats().session_closed();
        // A dropped connection must not leak its locks.
        if let (Some(txn), Some((_, db))) = (self.txn.take(), self.current.as_ref()) {
            self.engine.stats().txn_closed();
            let _ = db.abort(txn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_txn_lifecycle() {
        let engine = Engine::volatile();
        engine.create_database("t").unwrap();
        let mut s = engine.session();
        assert!(s.database().is_err(), "no database selected yet");
        s.use_database("t").unwrap();
        s.begin().unwrap();
        assert!(s.begin().is_err(), "one txn per session");
        assert!(s.use_database("t").is_err(), "no USE inside a txn");
        s.commit().unwrap();
        assert!(s.commit().is_err(), "nothing open");
        s.begin_read_only().unwrap();
        s.abort().unwrap();
    }

    #[test]
    fn dropping_a_session_aborts_its_transaction() {
        let engine = Engine::volatile();
        let db = engine.create_database("t").unwrap();
        {
            let mut s = engine.session();
            s.use_database("t").unwrap();
            s.begin().unwrap();
        }
        // The dropped session's transaction no longer holds anything: a
        // fresh writer proceeds immediately.
        db.with_txn(|_| Ok(())).unwrap();
    }
}
