//! Timed triggers — the §8 extension: "timed triggers, where the passage
//! of time can be used to produce events, are also of interest".
//!
//! The database keeps no wall clock; instead the application (or an
//! external scheduler) drives named logical timers with
//! [`Database::tick`]. A tick posts the corresponding `timer <name>` event
//! to every object that currently has active triggers and whose class
//! declares that timer event — so expressions like
//! `after Buy, timer month_end` ("a purchase with no event until month
//! end") work with the ordinary FSM machinery.

use crate::database::Database;
use crate::error::Result;
use ode_events::event::BasicEvent;
use ode_storage::{Oid, TxnId};

impl Database {
    /// Advance the named logical timer by one tick. Returns the number of
    /// objects the tick event was posted to.
    pub fn tick(&self, txn: TxnId, timer: &str) -> Result<usize> {
        let wanted = BasicEvent::Timer {
            name: timer.to_string(),
        };
        // Only objects with active triggers can care; enumerate the
        // trigger index rather than every object in the database.
        let entries = self.trigger_index.entries(&self.storage, txn)?;
        let mut posted = 0;
        for (key, states) in entries {
            if states.is_empty() {
                continue;
            }
            let oid = Oid::from_u64(key);
            let Ok((header, _)) = self.read_raw(txn, oid) else {
                continue;
            };
            let Ok(entry) = self.entry_by_id(header.class_id) else {
                continue;
            };
            if let Some(event) = entry.td.event_id(&wanted) {
                self.post_event(txn, oid, event)?;
                posted += 1;
            }
        }
        Ok(posted)
    }
}
