//! Timed triggers — the §8 extension: "timed triggers, where the passage
//! of time can be used to produce events, are also of interest".
//!
//! The database keeps no wall clock; instead the application (or an
//! external scheduler) drives named logical timers with
//! [`Database::tick`]. A tick posts the corresponding `timer <name>` event
//! to every object that currently has active triggers and whose class
//! declares that timer event — so expressions like
//! `after Buy, timer month_end` ("a purchase with no event until month
//! end") work with the ordinary FSM machinery.
//!
//! Tick cost scales with the *interested* objects: per armed object the
//! tick reads only the record header (never the payload), and the
//! timer-name-to-event resolution is memoized per dynamic class, so a
//! tick over N armed objects of C classes does C descriptor lookups and
//! zero allocations per object. Armed objects whose class does not
//! declare the timer are counted in the `tick_skips` metric and otherwise
//! cost one header read.

use crate::database::Database;
use crate::error::Result;
use ode_events::event::EventId;
use ode_storage::{Oid, TxnId};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

impl Database {
    /// Advance the named logical timer by one tick. Returns the number of
    /// objects the tick event was posted to.
    pub fn tick(&self, txn: TxnId, timer: &str) -> Result<usize> {
        // Only objects with active triggers can care; enumerate the
        // trigger index rather than every object in the database.
        let entries = self.trigger_index.entries(&self.storage, txn)?;
        // class id → declared `timer <timer>` event, resolved at most
        // once per class per tick (the resolution walks the descriptor's
        // event list comparing strings; armed objects share few classes).
        let mut per_class: HashMap<u32, Option<EventId>> = HashMap::new();
        let mut posted = 0;
        for (key, states) in entries {
            if states.is_empty() {
                continue;
            }
            let oid = Oid::from_u64(key);
            let Ok(header) = self.read_header(txn, oid) else {
                continue;
            };
            let event = match per_class.entry(header.class_id) {
                Entry::Occupied(slot) => *slot.get(),
                Entry::Vacant(slot) => *slot.insert(
                    self.entry_by_id(header.class_id)
                        .ok()
                        .and_then(|entry| entry.td.timer_event(timer)),
                ),
            };
            match event {
                Some(event) => {
                    self.post_event(txn, oid, event)?;
                    posted += 1;
                }
                None => self.metrics().tick_skips.inc(),
            }
        }
        Ok(posted)
    }
}
