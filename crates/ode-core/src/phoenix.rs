//! Phoenix transactions — §6's missing piece, implemented.
//!
//! The paper drops `after tcommit` because "it would be very expensive to
//! ensure that after tcommit will be posted even if the system crashes.
//! […] Reasonable semantics for after commit require the use of a
//! *phoenix transaction*, one that once started will never stop trying to
//! execute until it has completed — even if it must be restarted after
//! the system crashes."
//!
//! This module provides exactly that: a durable queue of named work items.
//! [`Database::enqueue_phoenix`] writes a queue record inside the caller's
//! transaction, so the item becomes durable *iff* that transaction commits
//! — giving reliable after-commit semantics without the serialization
//! anomalies §6 worries about (the item is only ever *observed* by
//! [`Database::run_phoenix`], which executes each item in its own system
//! transaction and removes it only on success). After a crash, reopen the
//! database, re-register the handlers, and call `run_phoenix` again: the
//! surviving items run to completion.
//!
//! Handlers are run-time closures registered per session (like class
//! descriptors, §5.1.3); items whose handler is not registered are left in
//! the queue untouched.

use crate::database::Database;
use crate::error::{OdeError, Result};
use bytes::BytesMut;
use ode_storage::codec::{decode_all, encode_to_vec, Blob, Decode, Encode};
use ode_storage::{ClusterId, Oid, TxnId};
use std::sync::Arc;

/// A phoenix work item handler. Runs inside a dedicated system
/// transaction; returning `Err` aborts that transaction and leaves the
/// item queued for a later retry.
pub type PhoenixHandler = Arc<dyn Fn(&Database, TxnId, &[u8]) -> Result<()> + Send + Sync>;

const ROOT_PHOENIX_CLUSTER: &str = "ode.phoenix_cluster";

/// One durable queue record.
#[derive(Debug, Clone, PartialEq)]
struct PhoenixRecord {
    handler: String,
    payload: Vec<u8>,
    attempts: u32,
}

impl Encode for PhoenixRecord {
    fn encode(&self, buf: &mut BytesMut) {
        self.handler.encode(buf);
        Blob(self.payload.clone()).encode(buf);
        self.attempts.encode(buf);
    }
}
impl Decode for PhoenixRecord {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(PhoenixRecord {
            handler: String::decode(buf)?,
            payload: Blob::decode(buf)?.0,
            attempts: u32::decode(buf)?,
        })
    }
}

/// Outcome of one [`Database::run_phoenix`] sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhoenixReport {
    /// Items executed and removed.
    pub executed: usize,
    /// Items whose handler failed; they stay queued (attempts bumped).
    pub failed: usize,
    /// Items whose handler is not registered this session; left queued.
    pub unresolved: usize,
}

impl Database {
    /// Register (or replace) the handler behind a phoenix item name.
    pub fn register_phoenix_handler(
        &self,
        name: &str,
        f: impl Fn(&Database, TxnId, &[u8]) -> Result<()> + Send + Sync + 'static,
    ) {
        self.phoenix_handlers
            .write()
            .insert(name.to_string(), Arc::new(f));
    }

    /// Get-or-create the queue's cluster.
    fn phoenix_cluster(&self, txn: TxnId) -> Result<ClusterId> {
        match self.storage.get_root(txn, ROOT_PHOENIX_CLUSTER) {
            Ok(marker) => Ok(marker.page()),
            Err(ode_storage::StorageError::NoSuchRoot(_)) => {
                let cluster = self.storage.create_cluster(txn)?;
                self.storage
                    .set_root(txn, ROOT_PHOENIX_CLUSTER, Oid::new(cluster, 0))?;
                Ok(cluster)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Enqueue a phoenix item inside `txn`. The item becomes durable when
    /// `txn` commits (and vanishes with it when `txn` aborts — enqueueing
    /// *is* the commit hook). Returns the queue record's Oid.
    pub fn enqueue_phoenix<P: Encode>(
        &self,
        txn: TxnId,
        handler: &str,
        payload: &P,
    ) -> Result<Oid> {
        let cluster = self.phoenix_cluster(txn)?;
        let rec = PhoenixRecord {
            handler: handler.to_string(),
            payload: encode_to_vec(payload),
            attempts: 0,
        };
        Ok(self.storage.allocate(txn, cluster, &encode_to_vec(&rec))?)
    }

    /// Number of queued items.
    pub fn pending_phoenix(&self, txn: TxnId) -> Result<usize> {
        match self.storage.get_root(txn, ROOT_PHOENIX_CLUSTER) {
            Ok(marker) => Ok(self.storage.scan_cluster(txn, marker.page())?.len()),
            Err(ode_storage::StorageError::NoSuchRoot(_)) => Ok(0),
            Err(e) => Err(e.into()),
        }
    }

    /// Execute every queued item whose handler is registered, each in its
    /// own system transaction. Items are removed only when their handler's
    /// transaction commits; failures stay queued with a bumped attempt
    /// counter. Call after every open (and whenever new items may have
    /// accumulated).
    pub fn run_phoenix(&self) -> Result<PhoenixReport> {
        let mut report = PhoenixReport::default();
        // Snapshot the queue in a read transaction.
        let items: Vec<Oid> = {
            let txn = self.storage.begin()?;
            let items = match self.storage.get_root(txn, ROOT_PHOENIX_CLUSTER) {
                Ok(marker) => self.storage.scan_cluster(txn, marker.page())?,
                Err(ode_storage::StorageError::NoSuchRoot(_)) => Vec::new(),
                Err(e) => {
                    let _ = self.storage.abort(txn);
                    return Err(e.into());
                }
            };
            self.storage.commit(txn)?;
            items
        };
        for oid in items {
            let outcome = self.run_phoenix_item(oid)?;
            match outcome {
                ItemOutcome::Executed => report.executed += 1,
                ItemOutcome::Failed => report.failed += 1,
                ItemOutcome::Unresolved => report.unresolved += 1,
                ItemOutcome::Gone => {}
            }
        }
        Ok(report)
    }

    fn run_phoenix_item(&self, oid: Oid) -> Result<ItemOutcome> {
        let handler = {
            // Read the record first (own small transaction).
            let txn = self.storage.begin()?;
            let bytes = match self.storage.read(txn, oid) {
                Ok(b) => b,
                Err(ode_storage::StorageError::NoSuchObject(_)) => {
                    self.storage.commit(txn)?;
                    return Ok(ItemOutcome::Gone);
                }
                Err(e) => {
                    let _ = self.storage.abort(txn);
                    return Err(e.into());
                }
            };
            self.storage.commit(txn)?;
            let rec: PhoenixRecord = decode_all(&bytes)?;
            let Some(handler) = self.phoenix_handlers.read().get(&rec.handler).cloned() else {
                return Ok(ItemOutcome::Unresolved);
            };
            (rec, handler)
        };
        let (rec, handler_fn) = handler;

        // Execute in a dedicated system transaction; the dequeue is part
        // of the same transaction, so "executed" and "removed" are atomic.
        let stxn = self.storage.begin_system()?;
        let result = (|| -> Result<()> {
            handler_fn(self, stxn, &rec.payload)?;
            self.storage.free(stxn, oid)?;
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.commit(stxn)?;
                Ok(ItemOutcome::Executed)
            }
            Err(_) => {
                let _ = self.abort(stxn);
                // Bump the attempt counter durably (best effort).
                if let Ok(txn) = self.storage.begin() {
                    let bumped = (|| -> Result<()> {
                        let mut rec: PhoenixRecord = decode_all(&self.storage.read(txn, oid)?)?;
                        rec.attempts += 1;
                        self.storage.update(txn, oid, &encode_to_vec(&rec))?;
                        Ok(())
                    })();
                    if bumped.is_ok() {
                        let _ = self.storage.commit(txn);
                    } else {
                        let _ = self.storage.abort(txn);
                    }
                }
                Ok(ItemOutcome::Failed)
            }
        }
    }

    /// Inspect a queued item's attempt counter (monitoring/tests).
    pub fn phoenix_attempts(&self, txn: TxnId, oid: Oid) -> Result<u32> {
        let rec: PhoenixRecord = decode_all(&self.storage.read(txn, oid)?)?;
        Ok(rec.attempts)
    }
}

enum ItemOutcome {
    Executed,
    Failed,
    Unresolved,
    Gone,
}

// Silence the unused-error-variant lint path: OdeError is used in handler
// signatures above.
const _: fn(&str) -> OdeError = |m| OdeError::Schema(m.to_string());
