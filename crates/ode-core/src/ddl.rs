//! The command/DDL layer: a textual statement surface over the engine.
//!
//! The paper defines triggers in O++ source; the related work (Reaction
//! RuleML, PAPERS.md) argues active systems need a practical textual rule
//! surface. This module extends the §4/§5.1 *expression* parser
//! (`ode_events::parser`) upward into a *statement* grammar executed
//! through a [`Session`]:
//!
//! ```text
//! CREATE DATABASE bank
//! USE bank
//! CREATE CLASS CredCard {
//!     FIELD cred_lim = 1000; FIELD curr_bal; FIELD good_hist = 1;
//!     EVENT AFTER Buy; EVENT AFTER PayBill;
//!     MASK OverLimit WHEN curr_bal > cred_lim;
//!     MASK MoreCred WHEN curr_bal > 0.8 * cred_lim AND good_hist == 1;
//! }
//! CREATE TRIGGER DenyCredit ON CredCard PERPETUAL
//!     WHEN after Buy & OverLimit() COUPLING immediate DO ABORT 'Over Limit'
//! CREATE TRIGGER AutoRaiseLimit ON CredCard
//!     WHEN relative((after Buy & MoreCred()), after PayBill)
//!     COUPLING immediate DO SET cred_lim = cred_lim + PARAM
//! NEW CredCard SET curr_bal = 0
//! ACTIVATE AutoRaiseLimit ON 3:0 WITH 1000
//! CALL 3:0 Buy SET curr_bal = curr_bal + 900
//! GET 3:0 cred_lim
//! ```
//!
//! The `WHEN … COUPLING` span is handed verbatim to the existing event
//! expression parser, resolved against the class's [`Alphabet`] — so
//! text-defined triggers compile to the *same* FSMs and run on the same
//! coupling machinery as Rust-defined ones ([`crate::class::ClassBuilder`]
//! is reused underneath). Classes defined here have named `f64` fields;
//! mask predicates and `SET` actions are a small numeric expression
//! language over those fields plus `PARAM`, the trigger's activation
//! parameter (the paper's `AutoRaiseLimit(float amount)`).
//!
//! Errors carry the byte offset into the statement text
//! ([`DdlError::at`]); offsets inside an event expression are rebased
//! onto the full statement, so `CREATE TRIGGER … WHEN after Typo …`
//! points at `Typo` in the original text.
//!
//! Like Rust-defined classes, DDL class definitions are *session* state
//! rebuilt on each engine start ("we chose to compile an FSM every time
//! we compile an O++ program", §5.1.3); class-id/cluster assignments and
//! all objects, trigger states, and FSM positions persist.

use crate::class::{ClassBuilder, Perpetual};
use crate::context::TriggerCtx;
use crate::database::Database;
use crate::error::{OdeError, Result};
use crate::metatype::CouplingMode;
use crate::object::ObjectHeader;
use crate::session::Session;
use crate::trigger::TriggerId;
use ode_events::event::{BasicEvent, EventTime};
use ode_storage::codec::Decode;
use ode_storage::Oid;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// A statement error: message plus, when known, the byte offset into the
/// statement text where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DdlError {
    /// Byte offset into the statement source, when the error is
    /// syntactic/positional.
    pub at: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl DdlError {
    fn at(at: usize, message: impl Into<String>) -> DdlError {
        DdlError {
            at: Some(at),
            message: message.into(),
        }
    }

    fn new(message: impl Into<String>) -> DdlError {
        DdlError {
            at: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for DdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.at {
            Some(at) => write!(f, "at byte {at}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for DdlError {}

impl From<OdeError> for DdlError {
    fn from(e: OdeError) -> DdlError {
        DdlError::new(e.to_string())
    }
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Str(String),
    Punct(&'static str),
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier {s:?}"),
            Tok::Number(n) => format!("number {n}"),
            Tok::Str(_) => "string".to_string(),
            Tok::Punct(p) => format!("{p:?}"),
        }
    }
}

const PUNCTS: &[&str] = &[
    "<=", ">=", "==", "!=", "&&", "||", "{", "}", "(", ")", ";", ",", "=", "+", "-", "*", "/", "<",
    ">", ":", "&", "|", "^", "!", "$",
];

fn lex(src: &str) -> std::result::Result<Vec<(Tok, usize)>, DdlError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    'outer: while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // `--` comments run to end of line.
        if c == b'-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push((Tok::Ident(src[start..i].to_string()), start));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i < bytes.len()
                && bytes[i] == b'.'
                && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
            {
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
            let text = &src[start..i];
            let n: f64 = text
                .parse()
                .map_err(|_| DdlError::at(start, format!("bad number {text:?}")))?;
            out.push((Tok::Number(n), start));
            continue;
        }
        if c == b'\'' {
            let start = i;
            i += 1;
            let lit_start = i;
            while i < bytes.len() && bytes[i] != b'\'' {
                i += 1;
            }
            if i >= bytes.len() {
                return Err(DdlError::at(start, "unterminated string literal"));
            }
            out.push((Tok::Str(src[lit_start..i].to_string()), start));
            i += 1;
            continue;
        }
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push((Tok::Punct(p), i));
                i += p.len();
                continue 'outer;
            }
        }
        return Err(DdlError::at(
            i,
            format!(
                "unexpected character {:?}",
                src[i..].chars().next().unwrap()
            ),
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Numeric / predicate expressions (mask bodies, SET right-hand sides)
// ---------------------------------------------------------------------

/// Arithmetic over the class's `f64` fields, `PARAM`, and literals.
#[derive(Debug, Clone, PartialEq)]
pub enum NumExpr {
    /// A literal number.
    Const(f64),
    /// A field reference, resolved against the class shape at DDL time.
    Field {
        /// Field name.
        name: String,
        /// Byte offset of the reference (for unknown-field errors).
        at: usize,
    },
    /// The trigger's activation parameter (`ACTIVATE … WITH <n>`).
    Param {
        /// Byte offset of the keyword.
        at: usize,
    },
    /// A `$n` placeholder (1-based), bound by `EXECUTE … WITH <args>`.
    /// Reaching evaluation unbound is an error.
    Arg {
        /// 1-based argument index.
        index: usize,
        /// Byte offset of the `$`.
        at: usize,
    },
    /// `lhs op rhs`.
    Binary {
        /// One of `+ - * /`.
        op: char,
        /// Left operand.
        lhs: Box<NumExpr>,
        /// Right operand.
        rhs: Box<NumExpr>,
    },
    /// Unary negation.
    Neg(Box<NumExpr>),
}

/// Boolean combinations of numeric comparisons (mask predicates).
#[derive(Debug, Clone, PartialEq)]
pub enum PredExpr {
    /// `lhs op rhs` with op in `== != < <= > >=`.
    Cmp {
        /// The comparison operator as written.
        op: &'static str,
        /// Left operand.
        lhs: NumExpr,
        /// Right operand.
        rhs: NumExpr,
    },
    /// Both sides true (`AND` / `&&`).
    And(Box<PredExpr>, Box<PredExpr>),
    /// Either side true (`OR` / `||`).
    Or(Box<PredExpr>, Box<PredExpr>),
}

/// The field layout of a DDL-defined class.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct Shape {
    /// `(name, default)` in payload order.
    fields: Vec<(String, f64)>,
    index: HashMap<String, usize>,
}

impl Shape {
    fn push(&mut self, name: &str, default: f64) -> bool {
        if self.index.contains_key(name) {
            return false;
        }
        self.index.insert(name.to_string(), self.fields.len());
        self.fields.push((name.to_string(), default));
        true
    }

    fn get(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    fn decode(&self, payload: &[u8], out: &mut Vec<f64>) -> Result<()> {
        out.clear();
        let mut slice = payload;
        for _ in 0..self.fields.len() {
            out.push(f64::decode(&mut slice).map_err(OdeError::from)?);
        }
        Ok(())
    }

    fn encode(&self, vals: &[f64], out: &mut Vec<u8>) {
        out.clear();
        for v in vals {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

impl NumExpr {
    /// Check every field reference against the shape (DDL-time; carries
    /// offsets into the statement text).
    fn validate(&self, shape: &Shape) -> std::result::Result<(), DdlError> {
        match self {
            NumExpr::Const(_) | NumExpr::Param { .. } => Ok(()),
            // Persistent definitions (masks, trigger actions) outlive any
            // one EXECUTE, so a placeholder in one can never be bound.
            NumExpr::Arg { index, at } => Err(DdlError::at(
                *at,
                format!("placeholder ${index} is not allowed in a persistent definition"),
            )),
            NumExpr::Field { name, at } => shape
                .get(name)
                .map(|_| ())
                .ok_or_else(|| DdlError::at(*at, format!("unknown field {name:?}"))),
            NumExpr::Binary { lhs, rhs, .. } => {
                lhs.validate(shape)?;
                rhs.validate(shape)
            }
            NumExpr::Neg(inner) => inner.validate(shape),
        }
    }

    fn eval(&self, shape: &Shape, vals: &[f64], param: Option<f64>) -> Result<f64> {
        match self {
            NumExpr::Const(n) => Ok(*n),
            NumExpr::Field { name, .. } => {
                let i = shape
                    .get(name)
                    .ok_or_else(|| OdeError::Action(format!("unknown field {name:?}")))?;
                Ok(vals[i])
            }
            NumExpr::Param { .. } => param.ok_or_else(|| {
                OdeError::Action(
                    "PARAM used but the trigger was activated without a parameter".into(),
                )
            }),
            NumExpr::Arg { index, .. } => Err(OdeError::Action(format!(
                "unbound placeholder ${index} (run via EXECUTE … WITH <args>)"
            ))),
            NumExpr::Binary { op, lhs, rhs } => {
                let l = lhs.eval(shape, vals, param)?;
                let r = rhs.eval(shape, vals, param)?;
                Ok(match op {
                    '+' => l + r,
                    '-' => l - r,
                    '*' => l * r,
                    _ => l / r,
                })
            }
            NumExpr::Neg(inner) => Ok(-inner.eval(shape, vals, param)?),
        }
    }

    /// Replace every `$n` placeholder with `args[n-1]`, in place
    /// (`EXECUTE … WITH <args>`).
    fn bind_args(&mut self, args: &[f64]) -> std::result::Result<(), DdlError> {
        match self {
            NumExpr::Arg { index, at } => {
                let (index, at) = (*index, *at);
                match args.get(index.wrapping_sub(1)) {
                    Some(v) => {
                        *self = NumExpr::Const(*v);
                        Ok(())
                    }
                    None => Err(DdlError::at(
                        at,
                        format!(
                            "placeholder ${index} has no argument (EXECUTE supplied {})",
                            args.len()
                        ),
                    )),
                }
            }
            NumExpr::Binary { lhs, rhs, .. } => {
                lhs.bind_args(args)?;
                rhs.bind_args(args)
            }
            NumExpr::Neg(inner) => inner.bind_args(args),
            NumExpr::Const(_) | NumExpr::Field { .. } | NumExpr::Param { .. } => Ok(()),
        }
    }
}

impl PredExpr {
    fn validate(&self, shape: &Shape) -> std::result::Result<(), DdlError> {
        match self {
            PredExpr::Cmp { lhs, rhs, .. } => {
                lhs.validate(shape)?;
                rhs.validate(shape)
            }
            PredExpr::And(a, b) | PredExpr::Or(a, b) => {
                a.validate(shape)?;
                b.validate(shape)
            }
        }
    }

    fn eval(&self, shape: &Shape, vals: &[f64], param: Option<f64>) -> Result<bool> {
        match self {
            PredExpr::Cmp { op, lhs, rhs } => {
                let l = lhs.eval(shape, vals, param)?;
                let r = rhs.eval(shape, vals, param)?;
                Ok(match *op {
                    "==" => l == r,
                    "!=" => l != r,
                    "<" => l < r,
                    "<=" => l <= r,
                    ">" => l > r,
                    _ => l >= r,
                })
            }
            PredExpr::And(a, b) => Ok(a.eval(shape, vals, param)? && b.eval(shape, vals, param)?),
            PredExpr::Or(a, b) => Ok(a.eval(shape, vals, param)? || b.eval(shape, vals, param)?),
        }
    }
}

// ---------------------------------------------------------------------
// Statement AST
// ---------------------------------------------------------------------

/// A trigger defined in DDL text. The event expression is kept as source
/// (`expr`, with its offset into the defining statement) and compiled by
/// [`ClassBuilder`] against the class alphabet, exactly like a
/// Rust-defined trigger.
#[derive(Debug, Clone, PartialEq)]
pub struct DdlTriggerDef {
    /// Trigger name.
    pub name: String,
    /// `PERPETUAL` was given.
    pub perpetual: bool,
    /// The `WHEN … COUPLING` span, verbatim.
    pub expr: String,
    /// Byte offset of `expr` in the defining statement (for rebasing
    /// expression parse errors).
    pub expr_at: usize,
    /// Coupling mode.
    pub coupling: CouplingMode,
    /// What the trigger does when it fires.
    pub action: DdlAction,
}

/// A DDL trigger action.
#[derive(Debug, Clone, PartialEq)]
pub enum DdlAction {
    /// `DO SET f = e, …` — assignments applied to the anchor object in
    /// order (later right-hand sides see earlier updates).
    Set(Vec<(String, NumExpr)>),
    /// `DO ABORT '<reason>'` — the paper's `tabort`.
    Abort(String),
}

/// A DDL class definition: named `f64` fields, declared events, masks.
#[derive(Debug, Clone, PartialEq)]
pub struct DdlClassDef {
    /// Class name.
    pub name: String,
    /// `(field, default)` in declaration (= payload) order.
    pub fields: Vec<(String, f64)>,
    /// Declared basic events.
    pub events: Vec<BasicEvent>,
    /// Mask name → predicate.
    pub masks: Vec<(String, PredExpr)>,
    /// Triggers added by `CREATE TRIGGER` (in order; the trigger numbers
    /// the FSM state records carry are indexes into this list).
    pub triggers: Vec<DdlTriggerDef>,
}

/// One parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE DATABASE <name>`
    CreateDatabase(String),
    /// `DROP DATABASE <name>`
    DropDatabase(String),
    /// `USE <name>`
    Use(String),
    /// `SHOW DATABASES`
    ShowDatabases,
    /// `CREATE CLASS <name> { … }`
    CreateClass(DdlClassDef),
    /// `CREATE TRIGGER <name> ON <class> [PERPETUAL] WHEN <expr> COUPLING <mode> DO <action>`
    CreateTrigger {
        /// The class the trigger is defined on.
        class: String,
        /// The trigger definition.
        def: DdlTriggerDef,
    },
    /// `ACTIVATE <trigger> ON <oid> [WITH <number>]`
    Activate {
        /// Trigger name (resolved against the anchor's dynamic class).
        trigger: String,
        /// Anchor object.
        anchor: Oid,
        /// Activation parameter.
        param: Option<f64>,
    },
    /// `DEACTIVATE <trigger-id>`
    Deactivate(Oid),
    /// `NEW <class> [SET f = e, …]`
    New {
        /// Class name (must be DDL-defined).
        class: String,
        /// Initial field overrides.
        sets: Vec<(String, NumExpr)>,
    },
    /// `CALL <oid> <method> [SET f = e, …]` — the §5.3 wrapper function:
    /// posts `before <method>`, applies the sets, posts `after <method>`.
    Call {
        /// Receiver object.
        anchor: Oid,
        /// Method name.
        method: String,
        /// Field updates (the "body").
        sets: Vec<(String, NumExpr)>,
    },
    /// `POST <oid> <event>` — post a user-defined event.
    Post {
        /// Target object.
        anchor: Oid,
        /// User event name.
        event: String,
    },
    /// `GET <oid> [<field>]`
    Get {
        /// Object to read.
        anchor: Oid,
        /// Single field, or all fields when absent.
        field: Option<String>,
    },
    /// `TICK <timer>`
    Tick(String),
    /// `BEGIN [READ ONLY]`
    Begin {
        /// Snapshot transaction.
        read_only: bool,
    },
    /// `COMMIT`
    Commit,
    /// `ABORT`
    Abort,
    /// `METRICS` — the engine's labeled Prometheus page.
    Metrics,
    /// `SHOW CLASSES` — DDL-defined classes of the current database.
    ShowClasses,
    /// `SHOW TRIGGERS` — trigger definitions with coupling mode and
    /// live instance counts.
    ShowTriggers,
    /// `SHOW TRACE` — the span tree of the last traced statement.
    ShowTrace,
    /// `TRACE ON | OFF | SAMPLE <n>` — session trace sampling.
    Trace(crate::session::TraceMode),
    /// `EXPLAIN <stmt>` — execute the statement traced and return its
    /// span tree in the same round trip.
    Explain(Box<Statement>),
    /// `PREPARE <name> AS <stmt>` — parse once, store on the session.
    Prepare {
        /// Prepared-statement name (session-scoped).
        name: String,
        /// The parsed body; may contain `$n` placeholders.
        stmt: Box<Statement>,
    },
    /// `EXECUTE <name> [WITH <n>, …]` — run a prepared statement with
    /// its placeholders bound to the given arguments.
    ExecutePrepared {
        /// Prepared-statement name.
        name: String,
        /// Placeholder arguments, 1-based (`$1` is `args[0]`).
        args: Vec<f64>,
    },
}

impl Statement {
    /// Bind `$n` placeholders throughout the statement, in place. Only
    /// expression positions (`SET` right-hand sides) can carry them;
    /// everything else is untouched.
    fn bind_args(&mut self, args: &[f64]) -> std::result::Result<(), DdlError> {
        match self {
            Statement::New { sets, .. } | Statement::Call { sets, .. } => {
                for (_, expr) in sets {
                    expr.bind_args(args)?;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------
// Statement parser
// ---------------------------------------------------------------------

struct Cursor<'a> {
    toks: &'a [(Tok, usize)],
    pos: usize,
    src_len: usize,
}

type PResult<T> = std::result::Result<T, DdlError>;

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn at(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(_, at)| *at)
            .unwrap_or(self.src_len)
    }

    /// Consume the next token if it is the given keyword
    /// (case-insensitive identifier match).
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> PResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected {kw}")))
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if let Some(Tok::Punct(q)) = self.peek() {
            if *q == p {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_punct(&mut self, p: &str) -> PResult<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected {p:?}")))
        }
    }

    fn ident(&mut self, what: &str) -> PResult<(String, usize)> {
        match self.toks.get(self.pos) {
            Some((Tok::Ident(s), at)) => {
                self.pos += 1;
                Ok((s.clone(), *at))
            }
            _ => Err(self.unexpected(&format!("expected {what}"))),
        }
    }

    fn number(&mut self, what: &str) -> PResult<f64> {
        let neg = self.eat_punct("-");
        match self.toks.get(self.pos) {
            Some((Tok::Number(n), _)) => {
                self.pos += 1;
                Ok(if neg { -n } else { *n })
            }
            _ => Err(self.unexpected(&format!("expected {what}"))),
        }
    }

    /// Parse `<page>:<slot>` as an object id.
    fn oid(&mut self) -> PResult<Oid> {
        let at = self.at();
        let page = self.number("object id (<page>:<slot>)")?;
        self.expect_punct(":")?;
        let slot = self.number("object id slot")?;
        if page < 0.0 || page.fract() != 0.0 || slot < 0.0 || slot.fract() != 0.0 || slot > 65535.0
        {
            return Err(DdlError::at(at, "object id parts must be small integers"));
        }
        Ok(Oid::new(page as u32, slot as u16))
    }

    fn unexpected(&self, want: &str) -> DdlError {
        match self.toks.get(self.pos) {
            Some((tok, at)) => DdlError::at(*at, format!("{want}, found {}", tok.describe())),
            None => DdlError::at(self.src_len, format!("{want}, found end of statement")),
        }
    }

    fn done(&self) -> bool {
        self.pos >= self.toks.len()
    }

    // -- numeric / predicate grammar --------------------------------

    fn num_expr(&mut self) -> PResult<NumExpr> {
        let mut lhs = self.num_term()?;
        loop {
            let op = if self.eat_punct("+") {
                '+'
            } else if self.eat_punct("-") {
                '-'
            } else {
                return Ok(lhs);
            };
            let rhs = self.num_term()?;
            lhs = NumExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn num_term(&mut self) -> PResult<NumExpr> {
        let mut lhs = self.num_factor()?;
        loop {
            let op = if self.eat_punct("*") {
                '*'
            } else if self.eat_punct("/") {
                '/'
            } else {
                return Ok(lhs);
            };
            let rhs = self.num_factor()?;
            lhs = NumExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn num_factor(&mut self) -> PResult<NumExpr> {
        if self.eat_punct("-") {
            return Ok(NumExpr::Neg(Box::new(self.num_factor()?)));
        }
        if self.eat_punct("(") {
            let e = self.num_expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        if let Some(Tok::Punct("$")) = self.peek() {
            let at = self.at();
            self.pos += 1;
            return match self.toks.get(self.pos) {
                Some((Tok::Number(n), _)) if n.fract() == 0.0 && *n >= 1.0 && *n <= 65535.0 => {
                    let index = *n as usize;
                    self.pos += 1;
                    Ok(NumExpr::Arg { index, at })
                }
                _ => Err(self.unexpected("expected placeholder index after $ (e.g. $1)")),
            };
        }
        match self.toks.get(self.pos) {
            Some((Tok::Number(n), _)) => {
                self.pos += 1;
                Ok(NumExpr::Const(*n))
            }
            Some((Tok::Ident(s), at)) => {
                let (s, at) = (s.clone(), *at);
                self.pos += 1;
                if s.eq_ignore_ascii_case("param") {
                    Ok(NumExpr::Param { at })
                } else {
                    Ok(NumExpr::Field { name: s, at })
                }
            }
            _ => Err(self.unexpected("expected number, field, PARAM, $n, or (")),
        }
    }

    fn pred_expr(&mut self) -> PResult<PredExpr> {
        let mut lhs = self.pred_and()?;
        while self.eat_kw("or") || self.eat_punct("||") {
            let rhs = self.pred_and()?;
            lhs = PredExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn pred_and(&mut self) -> PResult<PredExpr> {
        let mut lhs = self.pred_cmp()?;
        while self.eat_kw("and") || self.eat_punct("&&") {
            let rhs = self.pred_cmp()?;
            lhs = PredExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn pred_cmp(&mut self) -> PResult<PredExpr> {
        let lhs = self.num_expr()?;
        let op = match self.peek() {
            Some(Tok::Punct(p)) if ["==", "!=", "<", "<=", ">", ">="].contains(p) => *p,
            _ => return Err(self.unexpected("expected comparison operator")),
        };
        self.pos += 1;
        let rhs = self.num_expr()?;
        Ok(PredExpr::Cmp { op, lhs, rhs })
    }

    /// `SET f = e {, f = e}`.
    fn set_list(&mut self) -> PResult<Vec<(String, NumExpr)>> {
        let mut sets = Vec::new();
        loop {
            let (field, _) = self.ident("field name")?;
            self.expect_punct("=")?;
            sets.push((field, self.num_expr()?));
            if !self.eat_punct(",") {
                return Ok(sets);
            }
        }
    }
}

/// Parse one statement. Keywords are case-insensitive; identifiers are
/// case-sensitive.
pub fn parse_statement(src: &str) -> std::result::Result<Statement, DdlError> {
    let toks = lex(src)?;
    let mut c = Cursor {
        toks: &toks,
        pos: 0,
        src_len: src.len(),
    };
    let stmt = parse_inner(&mut c, src)?;
    if !c.done() {
        return Err(c.unexpected("expected end of statement"));
    }
    Ok(stmt)
}

fn parse_inner(c: &mut Cursor<'_>, src: &str) -> PResult<Statement> {
    if c.eat_kw("create") {
        if c.eat_kw("database") {
            return Ok(Statement::CreateDatabase(c.ident("database name")?.0));
        }
        if c.eat_kw("class") {
            return parse_create_class(c);
        }
        if c.eat_kw("trigger") {
            return parse_create_trigger(c, src);
        }
        return Err(c.unexpected("expected DATABASE, CLASS, or TRIGGER"));
    }
    if c.eat_kw("drop") {
        c.expect_kw("database")?;
        return Ok(Statement::DropDatabase(c.ident("database name")?.0));
    }
    if c.eat_kw("use") {
        return Ok(Statement::Use(c.ident("database name")?.0));
    }
    if c.eat_kw("show") {
        if c.eat_kw("databases") {
            return Ok(Statement::ShowDatabases);
        }
        if c.eat_kw("classes") {
            return Ok(Statement::ShowClasses);
        }
        if c.eat_kw("triggers") {
            return Ok(Statement::ShowTriggers);
        }
        if c.eat_kw("trace") {
            return Ok(Statement::ShowTrace);
        }
        return Err(c.unexpected("expected DATABASES, CLASSES, TRIGGERS, or TRACE"));
    }
    if c.eat_kw("trace") {
        if c.eat_kw("on") {
            return Ok(Statement::Trace(crate::session::TraceMode::On));
        }
        if c.eat_kw("off") {
            return Ok(Statement::Trace(crate::session::TraceMode::Off));
        }
        if c.eat_kw("sample") {
            let at = c.at();
            let n = c.number("sample interval")?;
            if n < 1.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
                return Err(DdlError::at(
                    at,
                    "TRACE SAMPLE wants a positive integer interval",
                ));
            }
            return Ok(Statement::Trace(crate::session::TraceMode::Sample(
                n as u64,
            )));
        }
        return Err(c.unexpected("expected ON, OFF, or SAMPLE <n>"));
    }
    if c.eat_kw("explain") {
        let at = c.at();
        let inner = parse_inner(c, src)?;
        if matches!(inner, Statement::Explain(_) | Statement::Prepare { .. }) {
            return Err(DdlError::at(at, "cannot EXPLAIN that statement"));
        }
        return Ok(Statement::Explain(Box::new(inner)));
    }
    if c.eat_kw("prepare") {
        let (name, _) = c.ident("prepared statement name")?;
        c.expect_kw("as")?;
        let at = c.at();
        let inner = parse_inner(c, src)?;
        if matches!(
            inner,
            Statement::Prepare { .. } | Statement::ExecutePrepared { .. } | Statement::Explain(_)
        ) {
            return Err(DdlError::at(at, "cannot PREPARE that statement"));
        }
        return Ok(Statement::Prepare {
            name,
            stmt: Box::new(inner),
        });
    }
    if c.eat_kw("execute") {
        let (name, _) = c.ident("prepared statement name")?;
        let mut args = Vec::new();
        if c.eat_kw("with") {
            loop {
                args.push(c.number("argument")?);
                if !c.eat_punct(",") {
                    break;
                }
            }
        }
        return Ok(Statement::ExecutePrepared { name, args });
    }
    if c.eat_kw("activate") {
        let (trigger, _) = c.ident("trigger name")?;
        c.expect_kw("on")?;
        let anchor = c.oid()?;
        let param = if c.eat_kw("with") {
            Some(c.number("activation parameter")?)
        } else {
            None
        };
        return Ok(Statement::Activate {
            trigger,
            anchor,
            param,
        });
    }
    if c.eat_kw("deactivate") {
        return Ok(Statement::Deactivate(c.oid()?));
    }
    if c.eat_kw("new") {
        let (class, _) = c.ident("class name")?;
        let sets = if c.eat_kw("set") {
            c.set_list()?
        } else {
            Vec::new()
        };
        return Ok(Statement::New { class, sets });
    }
    if c.eat_kw("call") {
        let anchor = c.oid()?;
        let (method, _) = c.ident("method name")?;
        let sets = if c.eat_kw("set") {
            c.set_list()?
        } else {
            Vec::new()
        };
        return Ok(Statement::Call {
            anchor,
            method,
            sets,
        });
    }
    if c.eat_kw("post") {
        let anchor = c.oid()?;
        let (event, _) = c.ident("event name")?;
        return Ok(Statement::Post { anchor, event });
    }
    if c.eat_kw("get") {
        let anchor = c.oid()?;
        let field = if c.done() {
            None
        } else {
            Some(c.ident("field name")?.0)
        };
        return Ok(Statement::Get { anchor, field });
    }
    if c.eat_kw("tick") {
        return Ok(Statement::Tick(c.ident("timer name")?.0));
    }
    if c.eat_kw("begin") {
        let read_only = if c.eat_kw("read") {
            c.expect_kw("only")?;
            true
        } else {
            false
        };
        return Ok(Statement::Begin { read_only });
    }
    if c.eat_kw("commit") {
        return Ok(Statement::Commit);
    }
    if c.eat_kw("abort") {
        return Ok(Statement::Abort);
    }
    if c.eat_kw("metrics") {
        return Ok(Statement::Metrics);
    }
    Err(c.unexpected("expected a statement keyword"))
}

fn parse_create_class(c: &mut Cursor<'_>) -> PResult<Statement> {
    let (name, _) = c.ident("class name")?;
    c.expect_punct("{")?;
    let mut def = DdlClassDef {
        name,
        fields: Vec::new(),
        events: Vec::new(),
        masks: Vec::new(),
        triggers: Vec::new(),
    };
    loop {
        if c.eat_punct("}") {
            return Ok(Statement::CreateClass(def));
        }
        if c.eat_kw("field") {
            let (fname, fat) = c.ident("field name")?;
            let default = if c.eat_punct("=") {
                c.number("default value")?
            } else {
                0.0
            };
            if def.fields.iter().any(|(n, _)| *n == fname) {
                return Err(DdlError::at(fat, format!("duplicate field {fname:?}")));
            }
            def.fields.push((fname, default));
        } else if c.eat_kw("event") {
            let event = if c.eat_kw("after") {
                BasicEvent::after(&c.ident("method name")?.0)
            } else if c.eat_kw("before") {
                BasicEvent::before(&c.ident("method name")?.0)
            } else if c.eat_kw("timer") {
                BasicEvent::Timer {
                    name: c.ident("timer name")?.0,
                }
            } else {
                BasicEvent::user(&c.ident("event name")?.0)
            };
            def.events.push(event);
        } else if c.eat_kw("mask") {
            let (mname, mat) = c.ident("mask name")?;
            c.expect_kw("when")?;
            let pred = c.pred_expr()?;
            if def.masks.iter().any(|(n, _)| *n == mname) {
                return Err(DdlError::at(mat, format!("duplicate mask {mname:?}")));
            }
            def.masks.push((mname, pred));
        } else {
            return Err(c.unexpected("expected FIELD, EVENT, MASK, or }"));
        }
        if !c.eat_punct(";") && !matches!(c.peek(), Some(Tok::Punct("}"))) {
            return Err(c.unexpected("expected ; or }"));
        }
    }
}

fn parse_create_trigger(c: &mut Cursor<'_>, src: &str) -> PResult<Statement> {
    let (name, _) = c.ident("trigger name")?;
    c.expect_kw("on")?;
    let (class, _) = c.ident("class name")?;
    let perpetual = c.eat_kw("perpetual");
    c.expect_kw("when")?;
    // The event expression between WHEN and COUPLING is handed verbatim
    // to the ode-events parser; find the COUPLING keyword to bound it.
    let expr_start = c.pos;
    let coupling_pos = (expr_start..c.toks.len())
        .find(|&i| matches!(&c.toks[i].0, Tok::Ident(s) if s.eq_ignore_ascii_case("coupling")));
    let Some(coupling_pos) = coupling_pos else {
        return Err(DdlError::at(
            c.at(),
            "expected COUPLING <mode> after the event expression",
        ));
    };
    if coupling_pos == expr_start {
        return Err(DdlError::at(c.at(), "empty event expression"));
    }
    let expr_at = c.toks[expr_start].1;
    let expr_end = c.toks[coupling_pos].1;
    let expr = src[expr_at..expr_end].trim_end().to_string();
    c.pos = coupling_pos + 1; // past COUPLING
    let coupling = if c.eat_punct("!") {
        c.expect_kw("dependent")?;
        CouplingMode::Independent
    } else {
        let (mode, mat) = c.ident("coupling mode")?;
        match mode.to_ascii_lowercase().as_str() {
            "immediate" => CouplingMode::Immediate,
            "end" => CouplingMode::End,
            "dependent" => CouplingMode::Dependent,
            "independent" => CouplingMode::Independent,
            _ => {
                return Err(DdlError::at(
                    mat,
                    format!(
                        "unknown coupling mode {mode:?} (want immediate, end, dependent, or independent)"
                    ),
                ))
            }
        }
    };
    c.expect_kw("do")?;
    let action = if c.eat_kw("set") {
        DdlAction::Set(c.set_list()?)
    } else if c.eat_kw("abort") {
        let reason = match c.toks.get(c.pos) {
            Some((Tok::Str(s), _)) => {
                c.pos += 1;
                s.clone()
            }
            _ => "tabort".to_string(),
        };
        DdlAction::Abort(reason)
    } else {
        return Err(c.unexpected("expected SET or ABORT"));
    };
    Ok(Statement::CreateTrigger {
        class,
        def: DdlTriggerDef {
            name,
            perpetual,
            expr,
            expr_at,
            coupling,
            action,
        },
    })
}

// ---------------------------------------------------------------------
// The per-database DDL catalog
// ---------------------------------------------------------------------

/// DDL-defined classes of one database. Guarded by a mutex on the
/// [`Database`]; `CREATE TRIGGER` rebuilds the descriptor under it so two
/// connections never interleave a rebuild.
#[derive(Default)]
pub(crate) struct DdlCatalog {
    classes: HashMap<String, (DdlClassDef, Arc<Shape>)>,
}

fn decode_param(raw: &[u8]) -> Option<f64> {
    <[u8; 8]>::try_from(raw).ok().map(f64::from_le_bytes)
}

/// Read and decode the anchor object's fields.
fn ctx_fields(ctx: &TriggerCtx<'_>, shape: &Shape) -> Result<(ObjectHeader, Vec<f64>)> {
    let (header, payload) = ctx.db().read_raw(ctx.txn(), ctx.anchor_oid())?;
    let mut vals = Vec::with_capacity(shape.fields.len());
    shape.decode(&payload, &mut vals)?;
    Ok((header, vals))
}

/// Compile a [`DdlClassDef`] into a live descriptor: the same
/// [`ClassBuilder`] path Rust-defined classes take. Masks and actions
/// close over the class shape and interpret the little expression
/// language against the anchor's decoded fields.
fn build_descriptor(
    db: &Database,
    def: &DdlClassDef,
    shape: &Arc<Shape>,
) -> Result<Arc<crate::metatype::TypeDescriptor>> {
    let mut b = ClassBuilder::new(&def.name);
    for event in &def.events {
        b = b.event(event.clone());
    }
    for (name, pred) in &def.masks {
        let pred = pred.clone();
        let shape = Arc::clone(shape);
        b = b.mask(name, move |ctx| {
            let (_, vals) = ctx_fields(ctx, &shape)?;
            pred.eval(&shape, &vals, decode_param(ctx.raw_params()))
        });
    }
    for trig in &def.triggers {
        let perpetual = if trig.perpetual {
            Perpetual::Yes
        } else {
            Perpetual::No
        };
        match &trig.action {
            DdlAction::Set(sets) => {
                let sets = sets.clone();
                let shape = Arc::clone(shape);
                b = b.trigger(
                    &trig.name,
                    &trig.expr,
                    trig.coupling,
                    perpetual,
                    move |ctx| {
                        let (header, mut vals) = ctx_fields(ctx, &shape)?;
                        let param = decode_param(ctx.raw_params());
                        for (field, expr) in &sets {
                            let i = shape.get(field).ok_or_else(|| {
                                OdeError::Action(format!("unknown field {field:?}"))
                            })?;
                            vals[i] = expr.eval(&shape, &vals, param)?;
                        }
                        let mut payload = Vec::with_capacity(vals.len() * 8);
                        shape.encode(&vals, &mut payload);
                        ctx.db()
                            .write_raw(ctx.txn(), ctx.anchor_oid(), header, &payload)
                    },
                );
            }
            DdlAction::Abort(reason) => {
                let reason = reason.clone();
                b = b.trigger(
                    &trig.name,
                    &trig.expr,
                    trig.coupling,
                    perpetual,
                    move |ctx| Err(ctx.tabort(&reason)),
                );
            }
        }
    }
    b.build(db.registry())
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

fn format_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Rebase an expression parse error onto the full statement text.
fn rebase_expr_error(e: OdeError, expr_at: usize) -> DdlError {
    match e {
        OdeError::Parse(pe) => DdlError::at(
            expr_at + pe.at,
            format!("in event expression: {}", pe.message),
        ),
        other => other.into(),
    }
}

impl Session {
    /// Parse and execute one statement, returning the reply payload
    /// (empty for plain `OK`s). Any error inside an explicitly opened
    /// transaction aborts it — `tabort` semantics: a failed statement
    /// takes the transaction down, matching
    /// [`Database::with_txn`]'s Err-path behavior.
    pub fn execute(&mut self, src: &str) -> std::result::Result<String, DdlError> {
        let started = std::time::Instant::now();
        let verb = src
            .trim_start()
            .split(char::is_whitespace)
            .next()
            .unwrap_or("");
        self.engine().stats().record_statement(verb);
        // A configured slow-statement threshold forces tracing: the span
        // tree has to exist by the time we learn the statement was slow.
        let slow_micros = self
            .database()
            .ok()
            .and_then(|db| db.storage.options().slow_statement_micros);
        let sampled = match self.trace_mode {
            crate::session::TraceMode::Off => false,
            crate::session::TraceMode::On => true,
            crate::session::TraceMode::Sample(n) => {
                self.trace_countdown += 1;
                if self.trace_countdown >= n.max(1) {
                    self.trace_countdown = 0;
                    true
                } else {
                    false
                }
            }
        };
        if sampled || slow_micros.is_some() || verb.eq_ignore_ascii_case("explain") {
            return self.execute_traced(src, verb, started, slow_micros);
        }
        let stmt = match self.parse_cached(src) {
            Ok(stmt) => stmt,
            Err(e) => {
                // A parse error is still a failed statement: tabort
                // semantics take the open transaction down with it.
                self.abort_open_txn();
                return Err(e);
            }
        };
        let result = self.run(stmt);
        self.observe_statement(started);
        result
    }

    /// Parse through the session's transparent text-keyed cache: a hit
    /// skips the lexer and parser entirely (the `PREPARE`-less half of
    /// the prepared-statement surface). The cache is bounded and cleared
    /// wholesale when full — statement texts either repeat heavily
    /// (placeholdered workloads re-send identical bytes) or not at all.
    fn parse_cached(&mut self, src: &str) -> std::result::Result<Statement, DdlError> {
        if !self.stmt_cache_enabled {
            let stmt = parse_statement(src)?;
            self.engine().stats().prepared_miss();
            return Ok(stmt);
        }
        if let Some(stmt) = self.stmt_cache.get(src) {
            let stmt = stmt.clone();
            self.engine().stats().prepared_hit();
            return Ok(stmt);
        }
        let stmt = parse_statement(src)?;
        self.engine().stats().prepared_miss();
        if self.stmt_cache.len() >= crate::session::STMT_CACHE_CAP {
            self.stmt_cache.clear();
        }
        self.stmt_cache.insert(src.to_string(), stmt.clone());
        Ok(stmt)
    }

    /// The traced statement path: this session's span ring installed as
    /// the ambient trace context, a `statement` root span (named by the
    /// leading verb) with a `parse` child — every layer below (locking,
    /// posting, FSM advances, coupling-mode system transactions, the WAL
    /// flush wait) contributes its spans through the thread-local.
    fn execute_traced(
        &mut self,
        src: &str,
        verb: &str,
        started: std::time::Instant,
        slow_micros: Option<u64>,
    ) -> std::result::Result<String, DdlError> {
        let trace_id = ode_trace::next_trace_id();
        let buf = Arc::clone(&self.trace_buf);
        let guard = ode_trace::install(Arc::clone(&buf), trace_id);
        let root = ode_trace::span(ode_trace::SpanKind::Statement, verb);
        let parsed = {
            let _parse = ode_trace::span(ode_trace::SpanKind::Parse, "");
            parse_statement(src)
        };
        let (stmt, explain) = match parsed {
            Ok(Statement::Explain(inner)) => (*inner, true),
            Ok(stmt) => (stmt, false),
            // `root` and `guard` unwind here; the aborted trace is left in
            // the ring and simply never rendered.
            Err(e) => {
                self.abort_open_txn();
                return Err(e);
            }
        };
        // TRACE and SHOW TRACE manage the trace state — they must not
        // replace the tree the user is about to look at.
        let keep = !matches!(stmt, Statement::Trace(_) | Statement::ShowTrace);
        let mut result = self.run(stmt);
        // A traced statement resolves its deferred commit here, inside
        // the statement span: the `commit` span (and its WAL LSN) belongs
        // in the tree the user asked for, so it skips the wire layer's
        // cross-session flush scheduler.
        if let Err(e) = self.commit_wait_pending() {
            if result.is_ok() {
                result = Err(DdlError::new(format!("commit durability failed: {e}")));
            }
        }
        drop(root);
        drop(guard);
        self.observe_statement(started);
        let tree = ode_trace::render_tree(trace_id, &buf.trace(trace_id));
        if let Some(threshold) = slow_micros {
            let elapsed = started.elapsed().as_micros() as u64;
            if elapsed > threshold {
                if let Ok(db) = self.database() {
                    db.metrics().slow_statements.inc();
                }
                let db = self.current_database().unwrap_or("-");
                eprintln!(
                    "[ode slow statement] db={db} {elapsed}\u{b5}s \
                     (threshold {threshold}\u{b5}s) {src:?}\n{tree}"
                );
            }
        }
        if keep {
            self.last_trace = Some(tree.clone());
        }
        match result {
            Ok(payload) if explain => Ok(if payload.is_empty() {
                tree
            } else {
                format!("result: {payload}\n{tree}")
            }),
            other => other,
        }
    }

    /// Record the statement's latency into the current database's
    /// histogram (the per-verb counters are engine-level and recorded in
    /// [`Session::execute`] before dispatch).
    fn observe_statement(&self, started: std::time::Instant) {
        if let Ok(db) = self.database() {
            db.metrics()
                .statement_micros
                .record(started.elapsed().as_micros() as u64);
        }
    }

    fn run(&mut self, stmt: Statement) -> std::result::Result<String, DdlError> {
        match stmt {
            Statement::CreateDatabase(name) => {
                self.engine().create_database(&name)?;
                Ok(String::new())
            }
            Statement::DropDatabase(name) => {
                if self.current_database() == Some(name.as_str()) {
                    return Err(DdlError::new("cannot drop the current database"));
                }
                self.engine().drop_database(&name)?;
                Ok(String::new())
            }
            Statement::Use(name) => {
                self.use_database(&name)?;
                Ok(String::new())
            }
            Statement::ShowDatabases => Ok(self.engine().list_databases().join("\n")),
            Statement::Begin { read_only } => {
                if read_only {
                    self.begin_read_only()?;
                } else {
                    self.begin()?;
                }
                Ok(String::new())
            }
            Statement::Commit => {
                self.commit()?;
                Ok(String::new())
            }
            Statement::Abort => {
                self.abort()?;
                Ok(String::new())
            }
            Statement::Metrics => Ok(self.engine().render_prometheus()),
            Statement::ShowClasses => self.show_classes(),
            Statement::ShowTriggers => self.show_triggers(),
            Statement::ShowTrace => Ok(self.last_trace.clone().unwrap_or_else(|| {
                "no trace recorded (TRACE ON, TRACE SAMPLE <n>, or EXPLAIN first)".into()
            })),
            Statement::Trace(mode) => {
                self.trace_mode = mode;
                self.trace_countdown = 0;
                Ok(String::new())
            }
            // EXPLAIN is peeled off in `execute` — tracing must be armed
            // before the inner statement runs.
            Statement::Explain(_) => Err(DdlError::new(
                "EXPLAIN must be executed as a top-level statement",
            )),
            Statement::Prepare { name, stmt } => {
                self.prepared.insert(name, *stmt);
                Ok(String::new())
            }
            Statement::ExecutePrepared { name, args } => {
                let mut stmt = self.prepared.get(&name).cloned().ok_or_else(|| {
                    DdlError::new(format!(
                        "unknown prepared statement {name:?} (PREPARE it first)"
                    ))
                })?;
                self.engine().stats().prepared_hit();
                stmt.bind_args(&args)?;
                self.run(stmt)
            }
            Statement::CreateClass(def) => self.create_class(def),
            Statement::CreateTrigger { class, def } => self.create_trigger(&class, def),
            Statement::Activate {
                trigger,
                anchor,
                param,
            } => self
                .with_session_txn(|db, txn| {
                    let header = db.read_header(txn, anchor)?;
                    let entry = db.entry_by_id(header.class_id)?;
                    let class = entry.td.name().to_string();
                    let params = match param {
                        Some(p) => p.to_le_bytes().to_vec(),
                        None => Vec::new(),
                    };
                    let id = db.activate_raw(txn, &class, &trigger, anchor, params, Vec::new())?;
                    Ok(id.oid().to_string())
                })
                .map_err(DdlError::from),
            Statement::Deactivate(oid) => self
                .with_session_txn(|db, txn| {
                    let was_active = db.deactivate(txn, TriggerId::from_oid(oid))?;
                    Ok(if was_active { "1" } else { "0" }.to_string())
                })
                .map_err(DdlError::from),
            Statement::New { class, sets } => self.exec_new(&class, &sets),
            Statement::Call {
                anchor,
                method,
                sets,
            } => self.exec_call(anchor, &method, &sets),
            Statement::Post { anchor, event } => self
                .with_session_txn(|db, txn| {
                    let header = db.read_header(txn, anchor)?;
                    let entry = db.entry_by_id(header.class_id)?;
                    let id = entry
                        .td
                        .event_id(&BasicEvent::user(&event))
                        .ok_or_else(|| {
                            OdeError::Schema(format!(
                                "event {event:?} is not declared by class {}",
                                entry.td.name()
                            ))
                        })?;
                    db.post_event(txn, anchor, id)?;
                    Ok(String::new())
                })
                .map_err(DdlError::from),
            Statement::Get { anchor, field } => self.exec_get(anchor, field.as_deref()),
            Statement::Tick(timer) => self
                .with_session_txn(|db, txn| Ok(db.tick(txn, &timer)?.to_string()))
                .map_err(DdlError::from),
        }
    }

    /// `SHOW CLASSES`: one line per registered class (DDL-defined and
    /// host-registered alike), with declared-surface counts.
    fn show_classes(&mut self) -> std::result::Result<String, DdlError> {
        let db = Arc::clone(self.database()?);
        let mut lines = Vec::new();
        for class in db.class_names() {
            let Some(td) = db.descriptor(&class) else {
                continue;
            };
            lines.push(format!(
                "{class} events={} triggers={}",
                td.events().len(),
                td.triggers().len()
            ));
        }
        Ok(lines.join("\n"))
    }

    /// `SHOW TRIGGERS`: every trigger definition with its coupling mode,
    /// perpetual flag, and the number of live activated instances,
    /// counted transactionally from the trigger-state index (so the
    /// session sees its own uncommitted ACTIVATEs).
    fn show_triggers(&mut self) -> std::result::Result<String, DdlError> {
        let db = Arc::clone(self.database()?);
        // Live instance counts keyed (class, trigger), deduplicated by
        // state oid — an inter-object instance is indexed under every
        // anchor it watches.
        let counts = self.with_session_txn(|db, txn| {
            let mut seen = std::collections::HashSet::new();
            let mut counts: HashMap<(String, String), u64> = HashMap::new();
            for (_, state_oids) in db.trigger_index.entries(&db.storage, txn)? {
                for oid in state_oids {
                    if !seen.insert(oid.to_u64()) {
                        continue;
                    }
                    let raw = db.storage.read(txn, oid)?;
                    let rec = crate::trigger::TriggerStateRec::decode_with(&raw, &db.interner)?;
                    let class = db.interner.resolve(rec.class_sym);
                    let trigger = db.interner.resolve(rec.trigger_sym);
                    *counts
                        .entry((class.to_string(), trigger.to_string()))
                        .or_insert(0) += 1;
                }
            }
            Ok(counts)
        })?;
        let mut lines = Vec::new();
        for class in db.class_names() {
            let Some(td) = db.descriptor(&class) else {
                continue;
            };
            for info in td.triggers() {
                let active = counts
                    .get(&(class.clone(), info.name.clone()))
                    .copied()
                    .unwrap_or(0);
                lines.push(format!(
                    "{} ON {class} {} COUPLING {} active={active}",
                    info.name,
                    if info.perpetual { "PERPETUAL" } else { "ONCE" },
                    info.coupling
                ));
            }
        }
        Ok(lines.join("\n"))
    }

    fn create_class(&mut self, def: DdlClassDef) -> std::result::Result<String, DdlError> {
        let db = Arc::clone(self.database()?);
        let mut shape = Shape::default();
        for (name, default) in &def.fields {
            shape.push(name, *default);
        }
        for (_, pred) in &def.masks {
            pred.validate(&shape)?;
        }
        let shape = Arc::new(shape);
        let mut catalog = db.ddl.lock();
        if let Some((existing, _)) = catalog.classes.get(&def.name) {
            // The stored def accumulates CREATE TRIGGER definitions, which a
            // re-issued CREATE CLASS statement cannot mention — compare the
            // class surface only.
            let mut stored = existing.clone();
            stored.triggers.clear();
            return if stored == def {
                Ok(String::new()) // idempotent re-issue (another connection)
            } else {
                Err(DdlError::new(format!(
                    "class {:?} already exists with a different definition",
                    def.name
                )))
            };
        }
        if db.descriptor(&def.name).is_some() {
            return Err(DdlError::new(format!(
                "class {:?} is already registered by the embedding application",
                def.name
            )));
        }
        let td = build_descriptor(&db, &def, &shape)?;
        db.register_class(&td)?;
        catalog
            .classes
            .insert(def.name.clone(), (def, Arc::clone(&shape)));
        Ok(String::new())
    }

    fn create_trigger(
        &mut self,
        class: &str,
        def: DdlTriggerDef,
    ) -> std::result::Result<String, DdlError> {
        let db = Arc::clone(self.database()?);
        let mut catalog = db.ddl.lock();
        let Some((class_def, shape)) = catalog.classes.get_mut(class) else {
            return Err(DdlError::new(format!(
                "unknown class {class:?} (CREATE CLASS it first; triggers can only be added to DDL-defined classes)"
            )));
        };
        if let Some(existing) = class_def.triggers.iter().find(|t| t.name == def.name) {
            // Compare everything but the source offset: two clients
            // issuing the same statement with different whitespace agree.
            let mut a = existing.clone();
            let mut b = def.clone();
            a.expr_at = 0;
            b.expr_at = 0;
            return if a == b {
                Ok(String::new())
            } else {
                Err(DdlError::new(format!(
                    "trigger {:?} already exists on {class:?} with a different definition",
                    def.name
                )))
            };
        }
        if let DdlAction::Set(sets) = &def.action {
            for (field, expr) in sets {
                if shape.get(field).is_none() {
                    return Err(DdlError::new(format!("unknown field {field:?}")));
                }
                expr.validate(shape)?;
            }
        }
        let expr_at = def.expr_at;
        class_def.triggers.push(def);
        // Rebuild the descriptor with the new trigger appended. Trigger
        // numbers of existing triggers are positions in this list, so
        // they are unchanged and armed FSM state records stay valid.
        let rebuilt = build_descriptor(&db, class_def, shape);
        match rebuilt {
            Ok(td) => {
                db.register_class(&td)?;
                Ok(String::new())
            }
            Err(e) => {
                class_def.triggers.pop(); // roll back the catalog append
                Err(rebase_expr_error(e, expr_at))
            }
        }
    }

    fn exec_new(
        &mut self,
        class: &str,
        sets: &[(String, NumExpr)],
    ) -> std::result::Result<String, DdlError> {
        let db = Arc::clone(self.database()?);
        let (shape, entry) = {
            let catalog = db.ddl.lock();
            let Some((_, shape)) = catalog.classes.get(class) else {
                return Err(DdlError::new(format!("unknown DDL class {class:?}")));
            };
            (Arc::clone(shape), db.entry(class)?)
        };
        let mut vals: Vec<f64> = shape.fields.iter().map(|(_, d)| *d).collect();
        for (field, expr) in sets {
            let i = shape
                .get(field)
                .ok_or_else(|| DdlError::new(format!("unknown field {field:?}")))?;
            vals[i] = expr.eval(&shape, &vals, None)?;
        }
        let oid = self.with_session_txn(|db, txn| {
            let header = ObjectHeader {
                class_id: entry.id,
                flags: 0,
            };
            let mut buf = bytes::BytesMut::with_capacity(5 + vals.len() * 8);
            header.write(&mut buf);
            for v in &vals {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            Ok(db.storage.allocate(txn, entry.cluster, &buf)?)
        })?;
        Ok(oid.to_string())
    }

    fn exec_call(
        &mut self,
        anchor: Oid,
        method: &str,
        sets: &[(String, NumExpr)],
    ) -> std::result::Result<String, DdlError> {
        let db = Arc::clone(self.database()?);
        self.with_session_txn(|db_ref, txn| {
            let header = db_ref.read_header(txn, anchor)?;
            let entry = db_ref.entry_by_id(header.class_id)?;
            let shape = {
                let catalog = db.ddl.lock();
                let Some((_, shape)) = catalog.classes.get(entry.td.name()) else {
                    return Err(OdeError::Schema(format!(
                        "object {anchor} is not of a DDL-defined class (its class is {:?})",
                        entry.td.name()
                    )));
                };
                Arc::clone(shape)
            };
            if let Some(event) = entry.td.member_event(method, EventTime::Before) {
                db_ref.post_event(txn, anchor, event)?;
            }
            // Re-read after the before-event: its triggers may have
            // updated the object (mirrors `Database::invoke`).
            let (header, payload) = db_ref.read_raw(txn, anchor)?;
            let mut vals = Vec::with_capacity(shape.fields.len());
            shape.decode(&payload, &mut vals)?;
            let mut changed = false;
            for (field, expr) in sets {
                let i = shape
                    .get(field)
                    .ok_or_else(|| OdeError::Action(format!("unknown field {field:?}")))?;
                let v = expr.eval(&shape, &vals, None)?;
                changed |= v.to_bits() != vals[i].to_bits();
                vals[i] = v;
            }
            if changed {
                let mut payload = Vec::with_capacity(vals.len() * 8);
                shape.encode(&vals, &mut payload);
                db_ref.write_raw(txn, anchor, header, &payload)?;
            }
            if let Some(event) = entry.td.member_event(method, EventTime::After) {
                db_ref.post_event(txn, anchor, event)?;
            }
            Ok(String::new())
        })
        .map_err(DdlError::from)
    }

    fn exec_get(
        &mut self,
        anchor: Oid,
        field: Option<&str>,
    ) -> std::result::Result<String, DdlError> {
        let db = Arc::clone(self.database()?);
        self.with_session_txn(|db_ref, txn| {
            let (header, payload) = db_ref.read_raw(txn, anchor)?;
            let entry = db_ref.entry_by_id(header.class_id)?;
            let shape = {
                let catalog = db.ddl.lock();
                let Some((_, shape)) = catalog.classes.get(entry.td.name()) else {
                    return Err(OdeError::Schema(format!(
                        "object {anchor} is not of a DDL-defined class (its class is {:?})",
                        entry.td.name()
                    )));
                };
                Arc::clone(shape)
            };
            let mut vals = Vec::with_capacity(shape.fields.len());
            shape.decode(&payload, &mut vals)?;
            match field {
                Some(name) => {
                    let i = shape
                        .get(name)
                        .ok_or_else(|| OdeError::Schema(format!("unknown field {name:?}")))?;
                    Ok(format_num(vals[i]))
                }
                None => Ok(shape
                    .fields
                    .iter()
                    .zip(&vals)
                    .map(|((name, _), v)| format!("{name}={}", format_num(*v)))
                    .collect::<Vec<_>>()
                    .join(" ")),
            }
        })
        .map_err(DdlError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn session() -> Session {
        let engine = Engine::volatile();
        let mut s = engine.session();
        s.execute("CREATE DATABASE t").unwrap();
        s.execute("USE t").unwrap();
        s
    }

    const CRED_CARD: &str = "CREATE CLASS CredCard { \
        FIELD cred_lim = 1000; FIELD curr_bal; FIELD good_hist = 1; \
        EVENT AFTER Buy; EVENT AFTER PayBill; \
        MASK OverLimit WHEN curr_bal > cred_lim; \
        MASK MoreCred WHEN curr_bal > 0.8 * cred_lim AND good_hist == 1; }";

    #[test]
    fn figure1_over_the_ddl_surface() {
        let mut s = session();
        s.execute(CRED_CARD).unwrap();
        s.execute(
            "CREATE TRIGGER AutoRaiseLimit ON CredCard \
             WHEN relative((after Buy & MoreCred()), after PayBill) \
             COUPLING immediate DO SET cred_lim = cred_lim + PARAM",
        )
        .unwrap();
        s.execute(
            "CREATE TRIGGER DenyCredit ON CredCard PERPETUAL \
             WHEN after Buy & OverLimit() \
             COUPLING immediate DO ABORT 'Over Limit'",
        )
        .unwrap();
        let card = s.execute("NEW CredCard").unwrap();
        s.execute(&format!("ACTIVATE AutoRaiseLimit ON {card} WITH 1000"))
            .unwrap();
        s.execute(&format!("ACTIVATE DenyCredit ON {card}"))
            .unwrap();
        // Buy 900: arms the relative trigger (balance over 80% of limit).
        s.execute(&format!("CALL {card} Buy SET curr_bal = curr_bal + 900"))
            .unwrap();
        // PayBill fires AutoRaiseLimit immediately: limit += 1000.
        s.execute(&format!(
            "CALL {card} PayBill SET curr_bal = curr_bal - 100"
        ))
        .unwrap();
        assert_eq!(s.execute(&format!("GET {card} cred_lim")).unwrap(), "2000");
        assert_eq!(s.execute(&format!("GET {card} curr_bal")).unwrap(), "800");
        // Over-limit buy: DenyCredit tabort rolls the statement back.
        let err = s
            .execute(&format!("CALL {card} Buy SET curr_bal = curr_bal + 1500"))
            .unwrap_err();
        assert!(err.message.contains("Over Limit"), "{err}");
        assert_eq!(s.execute(&format!("GET {card} curr_bal")).unwrap(), "800");
    }

    #[test]
    fn immediate_coupling_is_visible_inside_the_transaction() {
        let mut s = session();
        s.execute(CRED_CARD).unwrap();
        s.execute(
            "CREATE TRIGGER AutoRaiseLimit ON CredCard \
             WHEN relative((after Buy & MoreCred()), after PayBill) \
             COUPLING immediate DO SET cred_lim = cred_lim + PARAM",
        )
        .unwrap();
        let card = s.execute("NEW CredCard").unwrap();
        s.execute(&format!("ACTIVATE AutoRaiseLimit ON {card} WITH 500"))
            .unwrap();
        s.execute("BEGIN").unwrap();
        s.execute(&format!("CALL {card} Buy SET curr_bal = 900"))
            .unwrap();
        s.execute(&format!("CALL {card} PayBill SET curr_bal = 800"))
            .unwrap();
        // Still inside the transaction: the immediate action already ran.
        assert_eq!(s.execute(&format!("GET {card} cred_lim")).unwrap(), "1500");
        s.execute("COMMIT").unwrap();
        assert_eq!(s.execute(&format!("GET {card} cred_lim")).unwrap(), "1500");
    }

    #[test]
    fn errors_carry_byte_offsets() {
        let mut s = session();
        s.execute(CRED_CARD).unwrap();
        // Statement-level syntax error.
        let err = s.execute("CREATE TRIGGERS T ON C").unwrap_err();
        assert_eq!(err.at, Some(7));
        // Expression errors are rebased onto the statement text.
        let src =
            "CREATE TRIGGER T ON CredCard WHEN after Typo COUPLING immediate DO SET curr_bal = 0";
        let err = s.execute(src).unwrap_err();
        let at = err.at.expect("offset");
        assert_eq!(&src[at..at + 4], "afte", "{err}");
        // Unknown mask field at CREATE CLASS time, offset onto the name.
        let src = "CREATE CLASS Bad { FIELD a; MASK M WHEN missing > 1; }";
        let err = s.execute(src).unwrap_err();
        assert_eq!(&src[err.at.unwrap()..err.at.unwrap() + 7], "missing");
    }

    #[test]
    fn create_class_and_trigger_are_idempotent_for_identical_text() {
        let mut s = session();
        s.execute(CRED_CARD).unwrap();
        s.execute(CRED_CARD).unwrap();
        let trig = "CREATE TRIGGER T ON CredCard WHEN after Buy COUPLING end DO SET curr_bal = 0";
        s.execute(trig).unwrap();
        s.execute(trig).unwrap();
        // A different body under the same name is rejected.
        let err = s
            .execute(
                "CREATE TRIGGER T ON CredCard WHEN after PayBill COUPLING end DO SET curr_bal = 0",
            )
            .unwrap_err();
        assert!(err.message.contains("different definition"), "{err}");
        let err = s
            .execute("CREATE CLASS CredCard { FIELD other; }")
            .unwrap_err();
        assert!(err.message.contains("different definition"), "{err}");
    }

    #[test]
    fn read_only_sessions_snapshot_reads() {
        let mut s = session();
        s.execute("CREATE CLASS Cell { FIELD v = 7; }").unwrap();
        let cell = s.execute("NEW Cell").unwrap();
        s.execute("BEGIN READ ONLY").unwrap();
        assert_eq!(s.execute(&format!("GET {cell} v")).unwrap(), "7");
        // Writes are refused on a snapshot transaction (and the error
        // aborts it, per the session's tabort semantics).
        assert!(s.execute(&format!("CALL {cell} Nope SET v = 1")).is_err());
        assert!(s.txn().is_none(), "failed statement closed the txn");
    }

    #[test]
    fn prepared_statements_bind_placeholders() {
        let mut s = session();
        s.execute("CREATE CLASS Cell { FIELD v; }").unwrap();
        let cell = s.execute("NEW Cell").unwrap();
        s.execute(&format!("PREPARE add AS CALL {cell} Touch SET v = v + $1"))
            .unwrap();
        s.execute("EXECUTE add WITH 3").unwrap();
        s.execute("EXECUTE add WITH 4").unwrap();
        assert_eq!(s.execute(&format!("GET {cell} v")).unwrap(), "7");
        // Args beyond the highest placeholder index are fine; missing
        // ones are not.
        s.execute("EXECUTE add WITH 1, 99").unwrap();
        let err = s.execute("EXECUTE add").unwrap_err();
        assert!(err.message.contains("has no argument"), "{err}");
        let err = s.execute("EXECUTE missing WITH 1").unwrap_err();
        assert!(err.message.contains("unknown prepared statement"), "{err}");
        // PREPARE of PREPARE (or of EXPLAIN) is refused.
        let err = s.execute("PREPARE p AS PREPARE q AS BEGIN").unwrap_err();
        assert!(err.message.contains("cannot PREPARE"), "{err}");
    }

    #[test]
    fn placeholders_are_rejected_in_persistent_definitions() {
        let mut s = session();
        let err = s
            .execute("CREATE CLASS Bad { FIELD a; MASK M WHEN a > $1; }")
            .unwrap_err();
        assert!(err.message.contains("not allowed in a persistent"), "{err}");
        s.execute("CREATE CLASS C { FIELD a; EVENT AFTER Poke; }")
            .unwrap();
        let err = s
            .execute(
                "CREATE TRIGGER T ON C WHEN after Poke \
                 COUPLING immediate DO SET a = $1",
            )
            .unwrap_err();
        assert!(err.message.contains("not allowed in a persistent"), "{err}");
        // Unbound placeholders in a direct statement fail at eval time.
        s.execute("CREATE CLASS D { FIELD x; }").unwrap();
        let err = s.execute("NEW D SET x = $1").unwrap_err();
        assert!(err.message.contains("unbound placeholder"), "{err}");
    }

    #[test]
    fn transparent_stmt_cache_counts_hits_and_misses() {
        let mut s = session();
        s.execute("CREATE CLASS Cell { FIELD v; }").unwrap();
        let cell = s.execute("NEW Cell").unwrap();
        let engine = Arc::clone(s.engine());
        let (h0, m0) = (
            engine.stats().prepared_hits(),
            engine.stats().prepared_misses(),
        );
        let stmt = format!("CALL {cell} Touch SET v = v + 1");
        s.execute(&stmt).unwrap();
        assert_eq!(engine.stats().prepared_misses() - m0, 1, "first run parses");
        s.execute(&stmt).unwrap();
        s.execute(&stmt).unwrap();
        assert_eq!(
            engine.stats().prepared_hits() - h0,
            2,
            "repeats hit the cache"
        );
        assert_eq!(s.execute(&format!("GET {cell} v")).unwrap(), "3");
        // Disabling the cache clears it and every run parses again.
        s.set_stmt_cache(false);
        let m1 = engine.stats().prepared_misses();
        s.execute(&stmt).unwrap();
        s.execute(&stmt).unwrap();
        assert_eq!(engine.stats().prepared_misses() - m1, 2);
    }

    #[test]
    fn timers_and_user_events_flow_through_ddl() {
        let mut s = session();
        s.execute(
            "CREATE CLASS Stock { FIELD price; FIELD alarms; \
             EVENT Spike; EVENT TIMER daily; }",
        )
        .unwrap();
        s.execute(
            "CREATE TRIGGER OnSpike ON Stock PERPETUAL WHEN Spike, timer daily \
             COUPLING immediate DO SET alarms = alarms + 1",
        )
        .unwrap();
        let stock = s.execute("NEW Stock SET price = 10").unwrap();
        s.execute(&format!("ACTIVATE OnSpike ON {stock}")).unwrap();
        s.execute(&format!("POST {stock} Spike")).unwrap();
        assert_eq!(s.execute(&format!("GET {stock} alarms")).unwrap(), "0");
        assert_eq!(s.execute("TICK daily").unwrap(), "1");
        assert_eq!(s.execute(&format!("GET {stock} alarms")).unwrap(), "1");
    }
}
