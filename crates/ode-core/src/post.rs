//! Posting basic events and firing triggers (§5.4.5).
//!
//! The algorithm is the paper's, step for step:
//!
//! 1. If the object's control information says it has no active triggers,
//!    stop — "no lookup is required" (footnote 3; our control info is the
//!    flag byte in the object header).
//! 2. Otherwise look up the object's active triggers in the persistent
//!    index (§5.1.3).
//! 3. For each `TriggerState`, find the `TriggerInfo` in the *defining*
//!    class's type descriptor (`trigobjtype`, footnote 4), advance its FSM
//!    on the event, evaluate masks until quiescence, and update the stored
//!    `statenum` — the update that "requires acquisition of a write lock"
//!    (§6).
//! 4. "No triggers are fired until all triggers have had the basic event
//!    posted. This is to prevent the action of one trigger from affecting
//!    the mask of another trigger." Immediate actions then run
//!    sequentially (Ode lacks nested transactions, so does this
//!    reproduction; the paper says the same); non-immediate firings go on
//!    the per-transaction lists processed at commit/abort (§5.5).
//! 5. Once-only triggers are deactivated after firing; perpetual ones
//!    stay. A trigger fires "at most once in response to the posting of a
//!    single basic event".
//!
//! ## The hot path
//!
//! Steady-state posting (the §6 cost model) goes through a
//! per-transaction cache: the first advance of a trigger instance reads
//! and decodes its state record once into [`CachedTriggerState`]; every
//! later advance in the same transaction hits the decoded struct and
//! never touches storage. Dirty `statenum`s are patched into the retained
//! on-disk image ([`patch_u32_le`]) and written back in one pass at
//! commit ([`Database::flush_trigger_states`]); aborts just drop the
//! cache. Names travel as interned [`Sym`](crate::intern::Sym)s and
//! `Arc`s, accounting goes through the lock-free `ode-obs` counters, and
//! the index lookup fills a reusable per-transaction scratch buffer — a
//! steady-state post acquires no mutex and allocates no `String`.
//!
//! ## Snapshot readers
//!
//! The commit-time write-back goes through `storage.update`, which under
//! MVCC seeds the state record's committed image and installs the new
//! statenum as a fresh version at the commit sequence — in place of the
//! old "upgrade the S lock to X in place" pattern as far as readers are
//! concerned (writers still serialize under 2PL). A read-only snapshot
//! transaction therefore observes every trigger statenum exactly as of
//! its snapshot: never a half-flushed batch, never an uncommitted
//! advance. Posting an event on a snapshot transaction is refused up
//! front, since posting is always a write.

use crate::context::TriggerCtx;
use crate::database::{Database, TxnLocal};
use crate::error::{OdeError, Result};
use crate::metatype::{CouplingMode, TriggerInfo};
use crate::object::{OdeObject, PersistentPtr, FLAG_HAS_TRIGGERS};
use crate::trigger::{CachedTriggerState, TriggerId, TriggerStateRec};
use ode_events::event::EventId;
use ode_events::machine::Advance;
use ode_storage::codec::{encode_to_vec, patch_u32_le, Encode};
use ode_storage::{Oid, StorageError, TxnId};
use std::sync::Arc;

/// A trigger firing captured at detection time. Parameters and anchors
/// are shared (`Arc`) with the state record they were cut from, so the
/// action can run even after the record has been deactivated (once-only)
/// or the detecting transaction has committed (dependent/!dependent) —
/// without copying on the detection path.
#[derive(Debug, Clone)]
pub(crate) struct Firing {
    pub class_sym: crate::intern::Sym,
    pub triggernum: usize,
    pub trigger_name: Arc<str>,
    pub anchor: Oid,
    pub params: Arc<[u8]>,
    pub anchors: Arc<[(String, Oid)]>,
    pub coupling: CouplingMode,
    /// Encoded arguments of the detecting member-function event (§8
    /// event attributes), copied so deferred firings still see them.
    pub event_args: Option<Vec<u8>>,
}

impl Database {
    // ------------------------------------------------------------------
    // Activation / deactivation (§4.1, §5.4.1)
    // ------------------------------------------------------------------

    /// Activate a trigger of `class` (which may be a base class of the
    /// object's dynamic class) on the object behind `ptr`, with encoded
    /// parameters. This is the run-time half of
    /// `credcard->AutoRaiseLimit(1000.0)`.
    pub fn activate<T: OdeObject, P: Encode>(
        &self,
        txn: TxnId,
        ptr: PersistentPtr<T>,
        trigger: &str,
        params: &P,
    ) -> Result<TriggerId> {
        self.activate_raw(
            txn,
            T::CLASS,
            trigger,
            ptr.oid(),
            encode_to_vec(params),
            Vec::new(),
        )
    }

    /// Untyped activation; `anchors` is used by inter-object triggers.
    pub fn activate_raw(
        &self,
        txn: TxnId,
        class: &str,
        trigger: &str,
        anchor: Oid,
        params: Vec<u8>,
        anchors: Vec<(String, Oid)>,
    ) -> Result<TriggerId> {
        let entry = self.entry(class)?;
        let (triggernum, _) = entry.td.trigger(trigger).ok_or_else(|| {
            OdeError::Schema(format!("class {class:?} has no trigger {trigger:?}"))
        })?;
        if anchors.is_empty() {
            // Ordinary trigger: the anchor's dynamic class must derive
            // from the defining class.
            let header = self.read_header(txn, anchor)?;
            let dynamic = self.entry_by_id(header.class_id)?;
            if !dynamic.td.is_subclass_of(class) {
                return Err(OdeError::TypeMismatch {
                    expected: class.to_string(),
                    actual: dynamic.td.name().to_string(),
                });
            }
        }

        // Evaluate masks pending in the FSM's start state.
        let info = entry.td.trigger_by_num(triggernum).expect("found above");
        let mut mask_err: Option<OdeError> = None;
        let mut mask_evals = 0u64;
        let outcome = info.fsm.activate(|m| {
            mask_evals += 1;
            self.eval_mask(
                txn,
                &entry.td,
                m,
                anchor,
                &params,
                &info.name,
                &anchors,
                None,
                &mut mask_err,
            )
        });
        if let Some(e) = mask_err {
            return Err(e);
        }

        let trigger_sym = self.interner.intern(trigger);
        let rec = TriggerStateRec {
            triggernum: triggernum as u32,
            trigger_sym,
            statenum: outcome.state,
            class_sym: entry.sym,
            anchor,
            params: params.into(),
            anchors: anchors.into(),
        };
        let raw = rec.encode_to_vec_with(&self.interner);
        let state_oid = self.storage.allocate(txn, self.trigger_cluster, &raw)?;
        let id = TriggerId(state_oid);

        // Index the state under every anchor and raise the has-triggers
        // flag so posting can short-circuit for trigger-free objects.
        let mut anchor_oids = vec![anchor];
        anchor_oids.extend(rec.anchors.iter().map(|(_, o)| *o));
        anchor_oids.sort_unstable();
        anchor_oids.dedup();
        for a in &anchor_oids {
            self.trigger_index
                .insert(&self.storage, txn, a.to_u64(), state_oid)?;
            self.set_trigger_flag(txn, *a, true)?;
        }
        let metrics = self.metrics();
        metrics.trigger_activations.inc();
        metrics.mask_evaluations.add(mask_evals);

        // Seed the cache so the first post in this transaction skips the
        // storage read-back of a record we just wrote.
        let cached = CachedTriggerState {
            rec: rec.clone(),
            trigger_name: self.interner.resolve(trigger_sym),
            raw,
            statenum_offset: TriggerStateRec::statenum_offset(trigger.len()),
            dirty: false,
        };
        self.cache_put(txn, state_oid, cached);

        // An expression matching the empty stream fires at activation.
        if outcome.accepted {
            let firing = Firing {
                class_sym: entry.sym,
                triggernum,
                trigger_name: self.interner.resolve(trigger_sym),
                anchor,
                params: Arc::clone(&rec.params),
                anchors: Arc::clone(&rec.anchors),
                coupling: info.coupling,
                event_args: None,
            };
            let perpetual = info.perpetual;
            if !perpetual {
                self.deactivate(txn, id)?;
            }
            if let Some(f) = self.schedule(txn, firing) {
                self.fire(txn, &f, true)?;
            }
        } else if outcome.status == Advance::Dead {
            // The instance can never fire (anchored mask failed at
            // activation): don't leave garbage behind.
            self.deactivate(txn, id)?;
        }
        Ok(id)
    }

    /// Deactivate a trigger (§4.1's `deactivate(AutoRaise)`): remove its
    /// state record and index entries. Returns false when the trigger was
    /// already gone (e.g. a once-only trigger that fired).
    pub fn deactivate(&self, txn: TxnId, id: TriggerId) -> Result<bool> {
        // Drop any cached copy first: the pending statenum dies with the
        // instance, and commit must never resurrect a freed record.
        if let Some(local) = self.txn_local.lock(txn).get_mut(&txn) {
            local.state_cache.remove(&id.0);
        }
        let record = match self.storage.read(txn, id.0) {
            Ok(r) => r,
            Err(StorageError::NoSuchObject(_)) => return Ok(false),
            Err(e) => return Err(e.into()),
        };
        let rec = TriggerStateRec::decode_with(&record, &self.interner)?;
        self.storage.free(txn, id.0)?;
        let mut anchor_oids = vec![rec.anchor];
        anchor_oids.extend(rec.anchors.iter().map(|(_, o)| *o));
        anchor_oids.sort_unstable();
        anchor_oids.dedup();
        for a in anchor_oids {
            self.trigger_index
                .remove(&self.storage, txn, a.to_u64(), id.0)?;
            if self
                .trigger_index
                .get(&self.storage, txn, a.to_u64())?
                .is_empty()
            {
                self.set_trigger_flag(txn, a, false)?;
            }
        }
        self.metrics().trigger_deactivations.inc();
        Ok(true)
    }

    /// Deactivate every trigger anchored at `oid` (used by `pdelete`).
    pub fn deactivate_all(&self, txn: TxnId, oid: Oid) -> Result<usize> {
        let states = self.trigger_index.get(&self.storage, txn, oid.to_u64())?;
        let mut n = 0;
        for state_oid in states {
            if self.deactivate(txn, TriggerId(state_oid))? {
                n += 1;
            }
        }
        Ok(n)
    }

    /// The TriggerIds currently active on an object.
    pub fn active_triggers(&self, txn: TxnId, oid: Oid) -> Result<Vec<TriggerId>> {
        Ok(self
            .trigger_index
            .get(&self.storage, txn, oid.to_u64())?
            .into_iter()
            .map(TriggerId)
            .collect())
    }

    fn set_trigger_flag(&self, txn: TxnId, oid: Oid, set: bool) -> Result<()> {
        let (mut header, payload) = match self.read_raw(txn, oid) {
            Ok(x) => x,
            // The anchor may already be deleted (pdelete path).
            Err(OdeError::Storage(StorageError::NoSuchObject(_))) => return Ok(()),
            Err(e) => return Err(e),
        };
        let new_flags = if set {
            header.flags | FLAG_HAS_TRIGGERS
        } else {
            header.flags & !FLAG_HAS_TRIGGERS
        };
        if new_flags != header.flags {
            header.flags = new_flags;
            self.write_raw(txn, oid, header, &payload)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // The transaction-scoped state cache
    // ------------------------------------------------------------------

    /// (Re)insert a cached trigger state. Instances are *taken out* while
    /// they advance (masks and actions may re-enter the database, and the
    /// txn-local mutex is not reentrant), then put back here.
    fn cache_put(&self, txn: TxnId, state_oid: Oid, cached: CachedTriggerState) {
        self.txn_local
            .lock(txn)
            .entry(txn)
            .or_default()
            .state_cache
            .insert(state_oid, cached);
    }

    /// Write every dirty cached statenum back to storage — the single
    /// commit-time pass that replaces the per-advance
    /// `storage.update(..)` of the naive algorithm. The stored image is
    /// patched in place ([`patch_u32_le`]); nothing is re-encoded. An
    /// entry is dirty whenever its FSM *moved* this transaction, even if
    /// the cycle returned to the stored state — the write lock is §6's
    /// point, not the value.
    ///
    /// This is where the read-becomes-write lock amplification now
    /// happens: the S lock taken by the first (cache-miss) read upgrades
    /// to X here instead of inside `post_event`.
    ///
    /// Runs strictly before `storage.commit_deferred`, so the patched
    /// statenum cells sit in the WAL ahead of the transaction's Commit
    /// record: one group-commit flush makes the data mutation and the FSM
    /// position durable atomically, and recovery replays (or drops) them
    /// together.
    pub(crate) fn flush_trigger_states(&self, txn: TxnId, local: &mut TxnLocal) -> Result<()> {
        for (oid, cached) in local.state_cache.iter_mut() {
            if !cached.dirty {
                continue;
            }
            patch_u32_le(&mut cached.raw, cached.statenum_offset, cached.rec.statenum)?;
            match self.storage.update(txn, *oid, &cached.raw) {
                Ok(()) => {
                    cached.dirty = false;
                    self.metrics().state_writebacks.inc();
                }
                // Freed behind the cache's back (defensive; deactivate
                // invalidates eagerly).
                Err(StorageError::NoSuchObject(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Posting
    // ------------------------------------------------------------------

    /// Run one mask predicate, capturing any error into `slot` (the FSM's
    /// eval callback cannot return a Result).
    #[allow(clippy::too_many_arguments)]
    fn eval_mask(
        &self,
        txn: TxnId,
        td: &crate::metatype::TypeDescriptor,
        mask: ode_events::event::MaskId,
        anchor: Oid,
        params: &[u8],
        trigger_name: &str,
        anchors: &[(String, Oid)],
        event_args: Option<&[u8]>,
        slot: &mut Option<OdeError>,
    ) -> bool {
        let Some(f) = td.mask_fn(mask) else {
            *slot = Some(OdeError::Schema(format!(
                "class {:?} has no mask {mask}",
                td.name()
            )));
            return false;
        };
        let mut ctx = TriggerCtx {
            db: self,
            txn,
            anchor,
            params,
            trigger_name,
            anchors,
            event_args,
        };
        match f(&mut ctx) {
            Ok(b) => b,
            Err(e) => {
                *slot = Some(e);
                false
            }
        }
    }

    /// Post a basic event to an object (`PostEvent` of §5.4.5). Immediate
    /// firings run inside this call, after every trigger has seen the
    /// event.
    pub(crate) fn post_event(&self, txn: TxnId, anchor: Oid, event: EventId) -> Result<()> {
        self.post_event_with_args(txn, anchor, event, None)
    }

    /// [`Database::post_event`] with optional encoded member-function
    /// arguments attached (§8 event attributes).
    pub(crate) fn post_event_with_args(
        &self,
        txn: TxnId,
        anchor: Oid,
        event: EventId,
        event_args: Option<&[u8]>,
    ) -> Result<()> {
        // Posting advances persistent trigger FSMs — a write. Snapshot
        // readers must fail fast here, not deep inside a trigger action's
        // first storage mutation.
        if self.storage.is_read_only(txn) {
            return Err(OdeError::Storage(StorageError::ReadOnlyTxn(txn)));
        }
        let post_started = std::time::Instant::now();
        let mut post_span = ode_trace::span(ode_trace::SpanKind::Post, "");
        if post_span.is_recording() {
            // The prototype name costs an allocation to resolve; only
            // traced statements pay it.
            if let Some((_, basic)) = self.registry().describe(event) {
                post_span.rename(&basic.to_string());
            }
            post_span.payload(anchor.to_u64(), txn.0);
        }
        let metrics = self.metrics();
        metrics.events_posted.inc();
        metrics.emit(|| ode_obs::TraceEvent::EventPosted {
            event: event.0,
            anchor: anchor.to_u64(),
        });
        let header = self.read_header(txn, anchor)?;

        let mut immediate: Vec<Firing> = Vec::new();
        if header.has_triggers() {
            // Fill the transaction's scratch buffer instead of allocating
            // a fresh Vec per post. Taken out while we iterate — masks
            // and actions may post recursively, and a nested post simply
            // starts from an empty scratch of its own.
            let mut states = {
                let mut locals = self.txn_local.lock(txn);
                std::mem::take(&mut locals.entry(txn).or_default().scratch)
            };
            self.trigger_index
                .get_into(&self.storage, txn, anchor.to_u64(), &mut states)?;
            let mut walk = || -> Result<()> {
                for &state_oid in states.iter() {
                    if let Some(firing) =
                        self.advance_one(txn, anchor, event, state_oid, event_args)?
                    {
                        if let Some(f) = self.schedule(txn, firing) {
                            immediate.push(f);
                        }
                    }
                }
                Ok(())
            };
            let walked = walk();
            states.clear();
            if let Some(local) = self.txn_local.lock(txn).get_mut(&txn) {
                local.scratch = states;
            }
            walked?;
        } else {
            metrics.index_skips.inc();
        }

        // Volatile local rules (§8) advance too — their state never
        // touches storage. Skipped entirely while none are live.
        if self.has_local_rules() {
            for firing in self.advance_local_triggers(txn, anchor, event, event_args)? {
                if let Some(f) = self.schedule(txn, firing) {
                    immediate.push(f);
                }
            }
        }

        // Fire after all posting (paper: conceptually parallel nested
        // transactions; actually sequential, order unspecified).
        for firing in immediate {
            self.fire(txn, &firing, true)?;
        }
        metrics
            .post_micros
            .record(post_started.elapsed().as_micros() as u64);
        Ok(())
    }

    /// Advance a single persistent trigger instance; returns a Firing when
    /// it accepted.
    ///
    /// The instance is checked out of the transaction's state cache (or
    /// read and decoded on first touch), advanced without holding any
    /// lock — the FSM callback may re-enter the database — and checked
    /// back in unless it deactivated.
    fn advance_one(
        &self,
        txn: TxnId,
        anchor: Oid,
        event: EventId,
        state_oid: Oid,
        event_args: Option<&[u8]>,
    ) -> Result<Option<Firing>> {
        let metrics = self.metrics();
        let taken = {
            let mut locals = self.txn_local.lock(txn);
            locals
                .entry(txn)
                .or_default()
                .state_cache
                .remove(&state_oid)
        };
        let mut cached = match taken {
            Some(c) => {
                metrics.state_cache_hits.inc();
                c
            }
            None => {
                metrics.state_cache_misses.inc();
                let raw = match self.storage.read(txn, state_oid) {
                    Ok(r) => r,
                    // A concurrent deactivation in this transaction's view.
                    Err(StorageError::NoSuchObject(_)) => return Ok(None),
                    Err(e) => return Err(e.into()),
                };
                let mut rec = TriggerStateRec::decode_with(&raw, &self.interner)?;
                let name = self.interner.resolve(rec.trigger_sym);
                let entry = self.entry_sym(rec.class_sym)?;
                // Resolve the TriggerInfo once per transaction, tolerating
                // reordered definitions from older sessions.
                let resolved = match entry.td.trigger_by_num(rec.triggernum as usize) {
                    Some(info) if info.name == *name => Some(rec.triggernum as usize),
                    _ => entry.td.trigger(&name).map(|(n, _)| n),
                };
                let Some(triggernum) = resolved else {
                    // The class no longer defines this trigger: drop it.
                    self.deactivate(txn, TriggerId(state_oid))?;
                    return Ok(None);
                };
                rec.triggernum = triggernum as u32;
                let statenum_offset = TriggerStateRec::statenum_offset(name.len());
                CachedTriggerState {
                    rec,
                    trigger_name: name,
                    raw,
                    statenum_offset,
                    dirty: false,
                }
            }
        };

        let entry = self.entry_sym(cached.rec.class_sym)?;
        let triggernum = cached.rec.triggernum as usize;
        let Some(info) = entry.td.trigger_by_num(triggernum) else {
            self.deactivate(txn, TriggerId(state_oid))?;
            return Ok(None);
        };
        let info: &TriggerInfo = info;
        if cached.rec.statenum as usize >= info.fsm.len() {
            // Stale state from an older definition of the trigger.
            self.deactivate(txn, TriggerId(state_oid))?;
            return Ok(None);
        }

        // Inter-object triggers see anchor-qualified event ids.
        let fsm_event = if cached.rec.anchors.is_empty() {
            event
        } else {
            self.qualify_event(event, anchor, &cached.rec.anchors)
        };

        let from_state = cached.rec.statenum;
        let mut fsm_span = ode_trace::span(ode_trace::SpanKind::FsmAdvance, "");
        if fsm_span.is_recording() {
            fsm_span.rename(&cached.trigger_name);
            fsm_span.payload(from_state as u64, from_state as u64);
        }
        let mut mask_err: Option<OdeError> = None;
        let mut mask_evals = 0u64;
        let outcome = info.fsm.post(cached.rec.statenum, fsm_event, |m| {
            mask_evals += 1;
            self.eval_mask(
                txn,
                &entry.td,
                m,
                cached.rec.anchor,
                &cached.rec.params,
                &info.name,
                &cached.rec.anchors,
                event_args,
                &mut mask_err,
            )
        });
        metrics.fsm_advances.inc();
        if mask_evals > 0 {
            metrics.mask_evaluations.add(mask_evals);
        }
        if let Some(e) = mask_err {
            // Leave the instance checked in and untouched, exactly like
            // the pre-cache code left storage untouched on a mask error.
            self.cache_put(txn, state_oid, cached);
            return Err(e);
        }

        match outcome.status {
            Advance::Ignored => {
                self.cache_put(txn, state_oid, cached);
                Ok(None)
            }
            Advance::Dead => {
                // The instance can never fire again.
                self.deactivate(txn, TriggerId(state_oid))?;
                Ok(None)
            }
            Advance::Moved => {
                fsm_span.payload(from_state as u64, outcome.state as u64);
                let firing = outcome.accepted.then(|| Firing {
                    class_sym: cached.rec.class_sym,
                    triggernum,
                    trigger_name: Arc::clone(&cached.trigger_name),
                    anchor: cached.rec.anchor,
                    params: Arc::clone(&cached.rec.params),
                    anchors: Arc::clone(&cached.rec.anchors),
                    coupling: info.coupling,
                    event_args: event_args.map(<[u8]>::to_vec),
                });
                if outcome.accepted && !info.perpetual {
                    // Once-only: deactivate now, fire from the copy.
                    self.deactivate(txn, TriggerId(state_oid))?;
                    self.metrics().once_only_deactivations.inc();
                } else {
                    // Advancing the FSM updates the trigger descriptor —
                    // but the write (§6's read-becomes-write effect) is
                    // deferred to commit, batched per instance.
                    cached.rec.statenum = outcome.state;
                    cached.dirty = true;
                    self.cache_put(txn, state_oid, cached);
                }
                Ok(firing)
            }
        }
    }

    /// Translate an event id to its anchor-qualified form for inter-object
    /// FSMs (see [`crate::interobject`]).
    fn qualify_event(&self, event: EventId, anchor: Oid, anchors: &[(String, Oid)]) -> EventId {
        let Some((class, basic)) = self.registry().describe(event) else {
            return event;
        };
        let Some((name, _)) = anchors.iter().find(|(_, o)| *o == anchor) else {
            return event;
        };
        self.registry()
            .lookup(&crate::interobject::qualified_class(&class, name), &basic)
            .unwrap_or(event)
    }

    /// Route a firing by coupling mode; returns it back for `Immediate`.
    pub(crate) fn schedule(&self, txn: TxnId, firing: Firing) -> Option<Firing> {
        match firing.coupling {
            CouplingMode::Immediate => Some(firing),
            CouplingMode::End => {
                let mut locals = self.txn_local.lock(txn);
                locals.entry(txn).or_default().end_list.push(firing);
                None
            }
            CouplingMode::Dependent => {
                let mut locals = self.txn_local.lock(txn);
                locals.entry(txn).or_default().dep_list.push(firing);
                None
            }
            CouplingMode::Independent => {
                let mut locals = self.txn_local.lock(txn);
                locals.entry(txn).or_default().indep_list.push(firing);
                None
            }
        }
    }

    /// Execute a trigger action.
    pub(crate) fn fire(&self, txn: TxnId, firing: &Firing, _immediate: bool) -> Result<()> {
        let entry = self.entry_sym(firing.class_sym)?;
        let info = entry
            .td
            .trigger_by_num(firing.triggernum)
            .filter(|i| *i.name == *firing.trigger_name)
            .or_else(|| entry.td.trigger(&firing.trigger_name).map(|(_, i)| i))
            .ok_or_else(|| {
                OdeError::Schema(format!(
                    "trigger {:?} of class {:?} vanished before firing",
                    firing.trigger_name,
                    self.interner.resolve(firing.class_sym)
                ))
            })?;
        let metrics = self.metrics();
        let coupling = match firing.coupling {
            CouplingMode::Immediate => {
                metrics.firings_immediate.inc();
                ode_obs::coupling_label::IMMEDIATE
            }
            CouplingMode::End => {
                metrics.firings_end.inc();
                ode_obs::coupling_label::END
            }
            CouplingMode::Dependent => {
                metrics.firings_dependent.inc();
                ode_obs::coupling_label::DEPENDENT
            }
            CouplingMode::Independent => {
                metrics.firings_independent.inc();
                ode_obs::coupling_label::INDEPENDENT
            }
        };
        metrics.emit(|| ode_obs::TraceEvent::TriggerFired {
            trigger: &firing.trigger_name,
            coupling,
        });
        let mut ctx = TriggerCtx {
            db: self,
            txn,
            anchor: firing.anchor,
            params: &firing.params,
            trigger_name: &firing.trigger_name,
            anchors: &firing.anchors,
            event_args: firing.event_args.as_deref(),
        };
        let mut action_span = ode_trace::span(ode_trace::SpanKind::Action, "");
        if action_span.is_recording() {
            action_span.rename(&firing.trigger_name);
        }
        let action_started = std::time::Instant::now();
        let result = (info.action)(&mut ctx);
        metrics
            .action_micros
            .record(action_started.elapsed().as_micros() as u64);
        result
    }
}
