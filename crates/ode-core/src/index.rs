//! Secondary (attribute) indexes over persistent classes.
//!
//! Disk-based Ode shipped B-trees (§5.6); this module puts them to their
//! natural use: ordered indexes over class attributes, maintained
//! automatically by the object manager on every `pnew` / `update_with` /
//! `invoke` write-back / `pdelete`. Like class descriptors and trigger
//! FSMs (§5.1.3), the *key extractor* is runtime code registered each
//! session; only the B-tree itself persists.
//!
//! Keys need not be unique: entries are stored as `key ‖ oid`, and
//! lookups scan the key's prefix range.

use crate::database::Database;
use crate::error::{OdeError, Result};
use crate::object::{OdeObject, PersistentPtr};
use ode_storage::btree::BTree;
use ode_storage::codec::encode_to_vec;
use ode_storage::{Oid, TxnId};
use std::collections::HashMap;
use std::sync::Arc;

/// Extracts the index key bytes from a (decoded) object payload. Works on
/// the raw payload so the object manager can call it without knowing `T`.
pub(crate) type KeyExtractor = Arc<dyn Fn(&[u8]) -> Option<Vec<u8>> + Send + Sync>;

/// An index definition registered for the session.
#[derive(Clone)]
pub(crate) struct IndexDef {
    pub name: String,
    pub tree: BTree,
    pub extract: KeyExtractor,
}

/// Per-class registered indexes (lives in the Database).
#[derive(Default)]
pub(crate) struct IndexRegistry {
    by_class: HashMap<String, Vec<IndexDef>>,
}

impl IndexRegistry {
    pub fn for_class(&self, class: &str) -> &[IndexDef] {
        self.by_class
            .get(class)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    pub fn add(&mut self, class: &str, def: IndexDef) {
        let defs = self.by_class.entry(class.to_string()).or_default();
        defs.retain(|d| d.name != def.name);
        defs.push(def);
    }
}

fn entry_key(key: &[u8], oid: Oid) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() + 6);
    out.extend_from_slice(key);
    out.extend_from_slice(&encode_to_vec(&oid));
    out
}

fn prefix_end(key: &[u8]) -> Vec<u8> {
    // Oid entries append exactly 6 bytes, so key ‖ 0xFF×7 upper-bounds
    // every entry with this exact key prefix.
    let mut out = Vec::with_capacity(key.len() + 7);
    out.extend_from_slice(key);
    out.extend_from_slice(&[0xFF; 7]);
    out
}

impl Database {
    /// Create (or re-attach to) an attribute index over class `T`. The
    /// extractor maps an object to its key bytes (return `None` to leave
    /// the object unindexed). Existing objects of the class are indexed
    /// immediately; subsequent writes maintain the index automatically.
    ///
    /// Key order is byte-lexicographic: use
    /// [`ode_storage::btree::u64_key`]/[`ode_storage::btree::i64_key`] for
    /// numeric attributes.
    pub fn create_attribute_index<T: OdeObject>(
        &self,
        txn: TxnId,
        name: &str,
        extract: impl Fn(&T) -> Option<Vec<u8>> + Send + Sync + 'static,
    ) -> Result<()> {
        // Index nodes live in the system (trigger) cluster so class
        // cluster scans see only the class's own objects.
        let _ = self.entry(T::CLASS)?; // class must be registered
        let root_name = format!("ode.index.{}.{name}", T::CLASS);
        let tree = match self.storage.get_root(txn, &root_name) {
            Ok(oid) => BTree::open(oid),
            Err(ode_storage::StorageError::NoSuchRoot(_)) => {
                let tree = BTree::create(&self.storage, txn, self.trigger_cluster)?;
                self.storage.set_root(txn, &root_name, tree.oid())?;
                // Backfill existing objects.
                for ptr in self.scan::<T>(txn)? {
                    let value = self.read(txn, ptr)?;
                    if let Some(key) = extract(&value) {
                        tree.insert(&self.storage, txn, &entry_key(&key, ptr.oid()), ptr.oid())?;
                    }
                }
                tree
            }
            Err(e) => return Err(e.into()),
        };
        let extractor: KeyExtractor = Arc::new(move |payload: &[u8]| {
            let mut slice = payload;
            let value = T::decode(&mut slice).ok()?;
            extract(&value)
        });
        self.indexes.write().add(
            T::CLASS,
            IndexDef {
                name: name.to_string(),
                tree,
                extract: extractor,
            },
        );
        Ok(())
    }

    /// Maintain every registered index of `class` for a payload change.
    /// Either side may be `None` (insert / delete).
    pub(crate) fn maintain_indexes(
        &self,
        txn: TxnId,
        class: &str,
        oid: Oid,
        old_payload: Option<&[u8]>,
        new_payload: Option<&[u8]>,
    ) -> Result<()> {
        let defs: Vec<IndexDef> = self.indexes.read().for_class(class).to_vec();
        for def in defs {
            let old_key = old_payload.and_then(|p| (def.extract)(p));
            let new_key = new_payload.and_then(|p| (def.extract)(p));
            if old_key == new_key {
                continue;
            }
            if let Some(k) = old_key {
                def.tree.remove(&self.storage, txn, &entry_key(&k, oid))?;
            }
            if let Some(k) = new_key {
                def.tree
                    .insert(&self.storage, txn, &entry_key(&k, oid), oid)?;
            }
        }
        Ok(())
    }

    fn index_def(&self, class: &str, name: &str) -> Result<IndexDef> {
        self.indexes
            .read()
            .for_class(class)
            .iter()
            .find(|d| d.name == name)
            .cloned()
            .ok_or_else(|| OdeError::Schema(format!("class {class:?} has no index {name:?}")))
    }

    /// All objects whose index key equals `key`, in Oid order.
    pub fn lookup_by_index<T: OdeObject>(
        &self,
        txn: TxnId,
        name: &str,
        key: &[u8],
    ) -> Result<Vec<PersistentPtr<T>>> {
        let def = self.index_def(T::CLASS, name)?;
        let hits = def
            .tree
            .range(&self.storage, txn, Some(key), Some(&prefix_end(key)))?;
        Ok(hits
            .into_iter()
            .filter(|(k, _)| k.len() == key.len() + 6 && k.starts_with(key))
            .map(|(_, oid)| PersistentPtr::from_oid(oid))
            .collect())
    }

    /// All objects with `start <= key < end` (byte order), with their keys.
    pub fn range_by_index<T: OdeObject>(
        &self,
        txn: TxnId,
        name: &str,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, PersistentPtr<T>)>> {
        let def = self.index_def(T::CLASS, name)?;
        let end_owned = end.map(|e| e.to_vec());
        let hits = def
            .tree
            .range(&self.storage, txn, start, end_owned.as_deref())?;
        Ok(hits
            .into_iter()
            .map(|(mut k, oid)| {
                // Strip the oid suffix back off the stored key.
                let klen = k.len().saturating_sub(6);
                k.truncate(klen);
                (k, PersistentPtr::from_oid(oid))
            })
            .collect())
    }
}
