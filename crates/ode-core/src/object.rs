//! Persistent objects and typed persistent pointers.
//!
//! O++ splits memory into volatile and persistent halves (§2): persistent
//! objects are created with `pnew`, addressed through *persistent
//! pointers*, and only invocations through persistent pointers post
//! trigger events. [`PersistentPtr<T>`] is the Rust spelling of
//! `persistent T*`; plain `&T`/`&mut T` references are the volatile side
//! and never touch the trigger machinery (design goal 4: "the trigger
//! facilities should not add any overhead to volatile object accesses").
//!
//! On disk every object record is `[class_id u32][flags u8][payload]`.
//! The class id names the object's *dynamic* class (needed for event
//! posting with inheritance), and the flag byte carries the "this object
//! has active triggers" bit the paper uses to skip the trigger-index
//! lookup entirely for trigger-free objects (§5.4.5, footnote 3). The
//! payload layout is whatever the class's [`OdeObject`] codec writes — and
//! because trigger state lives *outside* the object, attaching or removing
//! triggers never changes it (design goal 5).

use crate::error::{OdeError, Result};
use bytes::{BufMut, BytesMut};
use ode_storage::codec::{Decode, Encode};
use ode_storage::Oid;
use std::marker::PhantomData;

/// A persistent class: a codec plus a class name that must match the name
/// the class was registered under.
pub trait OdeObject: Encode + Decode {
    /// The class name, linking values to their [`crate::metatype::TypeDescriptor`].
    const CLASS: &'static str;
}

/// Flag bit: the object has at least one active trigger.
pub(crate) const FLAG_HAS_TRIGGERS: u8 = 0b0000_0001;

/// Decoded object record header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ObjectHeader {
    pub class_id: u32,
    pub flags: u8,
}

impl ObjectHeader {
    pub fn has_triggers(&self) -> bool {
        self.flags & FLAG_HAS_TRIGGERS != 0
    }

    pub fn write(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.class_id);
        buf.put_u8(self.flags);
    }

    /// Split a stored record into (header, payload).
    pub fn split(record: &[u8]) -> Result<(ObjectHeader, &[u8])> {
        if record.len() < 5 {
            return Err(OdeError::Schema("object record too short".into()));
        }
        let class_id = u32::from_le_bytes(record[0..4].try_into().expect("checked"));
        Ok((
            ObjectHeader {
                class_id,
                flags: record[4],
            },
            &record[5..],
        ))
    }
}

/// A typed persistent pointer (`persistent T*`). `Copy`, cheap, and
/// storable inside other persistent objects.
pub struct PersistentPtr<T> {
    oid: Oid,
    _type: PhantomData<fn() -> T>,
}

impl<T> PersistentPtr<T> {
    /// Wrap a raw Oid. The type is asserted, not checked — checks happen
    /// at dereference time against the stored class id.
    pub fn from_oid(oid: Oid) -> PersistentPtr<T> {
        PersistentPtr {
            oid,
            _type: PhantomData,
        }
    }

    /// The underlying object identifier.
    pub fn oid(&self) -> Oid {
        self.oid
    }

    /// Reinterpret as a pointer to another class (e.g. derived → base).
    /// Like the raw constructor, validity is checked at dereference.
    pub fn cast<U>(&self) -> PersistentPtr<U> {
        PersistentPtr::from_oid(self.oid)
    }
}

// Manual impls: derive would bound T unnecessarily.
impl<T> Clone for PersistentPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for PersistentPtr<T> {}

impl<T> PartialEq for PersistentPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.oid == other.oid
    }
}
impl<T> Eq for PersistentPtr<T> {}

impl<T> std::hash::Hash for PersistentPtr<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.oid.hash(state);
    }
}

impl<T> std::fmt::Debug for PersistentPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PersistentPtr({})", self.oid)
    }
}

impl<T> Encode for PersistentPtr<T> {
    fn encode(&self, buf: &mut BytesMut) {
        self.oid.encode(buf);
    }
}

impl<T> Decode for PersistentPtr<T> {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(PersistentPtr::from_oid(Oid::decode(buf)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_storage::codec::{decode_all, encode_to_vec};

    struct Dummy;

    #[test]
    fn ptr_roundtrips_through_codec() {
        let p: PersistentPtr<Dummy> = PersistentPtr::from_oid(Oid::new(7, 3));
        let bytes = encode_to_vec(&p);
        let q: PersistentPtr<Dummy> = decode_all(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn cast_preserves_oid() {
        let p: PersistentPtr<Dummy> = PersistentPtr::from_oid(Oid::new(1, 2));
        let q: PersistentPtr<u8> = p.cast();
        assert_eq!(p.oid(), q.oid());
    }

    #[test]
    fn header_roundtrip_and_flags() {
        let mut buf = BytesMut::new();
        ObjectHeader {
            class_id: 9,
            flags: FLAG_HAS_TRIGGERS,
        }
        .write(&mut buf);
        buf.put_slice(b"payload");
        let (h, payload) = ObjectHeader::split(&buf).unwrap();
        assert_eq!(h.class_id, 9);
        assert!(h.has_triggers());
        assert_eq!(payload, b"payload");
    }

    #[test]
    fn short_record_rejected() {
        assert!(ObjectHeader::split(&[1, 2]).is_err());
    }
}
