//! Transaction boundaries and coupling modes (§4.2, §5.5).
//!
//! Commit processing follows the paper:
//!
//! 1. "Immediately before posting `before tcomplete` events, commit
//!    processing scans the end list and executes the relevant actions."
//! 2. `before tcomplete` is posted to every object on the transaction
//!    event object list (populated when such objects were first accessed).
//! 3. The storage transaction commits.
//! 4. "The routine for committing a transaction scans the dependent list
//!    in one transaction and the !dependent list in another" — system
//!    transactions, with the dependent one carrying a commit dependency on
//!    the detecting transaction.
//!
//! Abort processing posts `before tabort`, rolls everything back (trigger
//! state updates ride the ordinary undo, so "actions of aborted
//! transactions are rolled back, \[and\] so are their associated events"),
//! and then runs the `!dependent` list in a system transaction — the one
//! channel through which an aborted transaction can leave permanent
//! traces, exactly as §5.5 describes.
//!
//! `after tcommit` and `after tabort` are *not* offered; §6 explains why
//! they were dropped (serialization-order and crash-atomicity problems
//! that would require phoenix transactions).

use crate::database::Database;
use crate::error::Result;
use crate::post::Firing;
use ode_storage::{CommitTicket, StorageError, TxnId, TxnState};

/// Bound on end-trigger cascades (end actions scheduling more end
/// triggers).
const MAX_END_ROUNDS: usize = 32;

impl Database {
    /// Begin a transaction.
    pub fn begin(&self) -> Result<TxnId> {
        Ok(self.storage.begin()?)
    }

    /// Run `f` inside a transaction: commit on `Ok`, abort on `Err` (this
    /// is how a trigger action's `tabort` actually takes the transaction
    /// down).
    pub fn with_txn<R>(&self, f: impl FnOnce(TxnId) -> Result<R>) -> Result<R> {
        let txn = self.begin()?;
        match f(txn) {
            Ok(value) => {
                self.commit(txn)?;
                Ok(value)
            }
            Err(e) => {
                let _ = self.abort(txn);
                Err(e)
            }
        }
    }

    /// Begin a read-only snapshot transaction: every read is served at one
    /// consistent commit point with **no lock-manager locks**, so it can
    /// neither block nor deadlock — the escape hatch from §6's "triggers
    /// turn reads into writes" amplification for pure readers. Event
    /// posting and all write operations fail on such a transaction.
    pub fn begin_read_only(&self) -> Result<TxnId> {
        Ok(self.storage.begin_read_only()?)
    }

    /// Run `f` inside a read-only snapshot transaction. No retry wrapper
    /// is needed — snapshot readers cannot be picked as deadlock victims.
    pub fn with_read_txn<R>(&self, f: impl FnOnce(TxnId) -> Result<R>) -> Result<R> {
        let txn = self.begin_read_only()?;
        match f(txn) {
            Ok(value) => {
                self.commit(txn)?;
                Ok(value)
            }
            Err(e) => {
                let _ = self.abort(txn);
                Err(e)
            }
        }
    }

    /// Like [`Database::with_txn`], but transparently retries when the
    /// transaction is chosen as a deadlock victim (or hits the lock
    /// timeout) — the §6 observation that triggers raise "the likelihood
    /// of deadlock" makes such victims a normal operating condition, and
    /// the standard response is to rerun the transaction. `tabort` and
    /// other application errors are *not* retried.
    pub fn with_txn_retry<R>(
        &self,
        max_attempts: usize,
        f: impl Fn(TxnId) -> Result<R>,
    ) -> Result<R> {
        let mut last = None;
        for _ in 0..max_attempts.max(1) {
            match self.with_txn(&f) {
                Err(e)
                    if matches!(
                        e,
                        crate::error::OdeError::Storage(StorageError::Deadlock(_))
                            | crate::error::OdeError::Storage(StorageError::LockTimeout(_))
                    ) =>
                {
                    last = Some(e);
                }
                other => return other,
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Commit: end actions, `before tcomplete`, storage commit, then the
    /// dependent/!dependent lists in system transactions.
    ///
    /// The storage commit is split around the detached firings: the
    /// detecting transaction's Commit record is appended and its locks
    /// released with [`ode_storage::Storage::commit_deferred`], the
    /// dependent/!dependent system transactions then run and append *their*
    /// Commit records, and only afterwards does this transaction block on
    /// the durability watermark. One group-commit flush therefore makes the
    /// detecting transaction and its trigger firings durable together,
    /// instead of paying one fsync per system transaction.
    pub fn commit(&self, txn: TxnId) -> Result<()> {
        let ticket = self.commit_start(txn)?;
        self.commit_wait(ticket)
    }

    /// The logical half of [`Database::commit`]: everything except the
    /// final durability wait. On return the transaction is committed —
    /// its Commit record is in the WAL buffer, its locks are released,
    /// its versions installed, and its dependent/!dependent firings have
    /// run — but the caller must not acknowledge it until
    /// [`Database::commit_wait`] on the returned ticket succeeds. The
    /// wire layer uses this split to let concurrent sessions' tickets
    /// ride one shared group-commit flush.
    pub fn commit_start(&self, txn: TxnId) -> Result<CommitTicket> {
        // Snapshot transactions posted no events and advanced no trigger
        // state, so the whole commit ceremony collapses: drop the (empty)
        // scratchpad, release the snapshot, and wait on the begin-time
        // read barrier so the acknowledged reads are durable.
        if self.storage.is_read_only(txn) {
            let _ = self.drop_txn_local(txn);
            return Ok(self.storage.commit_deferred(txn)?);
        }
        if let Err(e) = self.pre_commit(txn) {
            // An end action or tcomplete trigger aborted the transaction
            // (e.g. tabort, or a constraint check). Take the full abort
            // path, which still honours !dependent firings.
            let _ = self.abort(txn);
            return Err(e);
        }
        let mut local = self.drop_txn_local(txn);
        // One write-back pass for every statenum advanced in this
        // transaction — the deferred half of §6's read-becomes-write
        // lock amplification (S locks from cache-miss reads upgrade to X
        // here).
        if let Err(e) = self.flush_trigger_states(txn, &mut local) {
            let _ = self.storage.abort(txn);
            self.run_detached(local.indep_list, None);
            return Err(e);
        }
        self.metrics()
            .commit_queue_depth
            .add((local.dep_list.len() + local.indep_list.len()) as u64);
        match self.storage.commit_deferred(txn) {
            Ok(ticket) => {
                // The dependent list may run as soon as the detecting
                // transaction is logically committed (its locks are free,
                // its Commit record's WAL position fixed); each system
                // transaction's own commit rides the shared flush batch.
                self.run_detached(local.dep_list, Some(txn));
                self.run_detached(local.indep_list, None);
                Ok(ticket)
            }
            Err(e) => {
                // storage.commit_deferred aborts the transaction itself on
                // a failed commit dependency. !dependent actions still run
                // — they are independent of the detecting transaction's
                // fate.
                self.run_detached(local.indep_list, None);
                Err(e.into())
            }
        }
    }

    /// Block until the ticket's commit is durable (the deferred half of
    /// [`Database::commit_start`]).
    pub fn commit_wait(&self, ticket: CommitTicket) -> Result<()> {
        self.storage.commit_wait(ticket).map_err(Into::into)
    }

    /// Abort: post `before tabort`, roll back, then run the `!dependent`
    /// list in a system transaction.
    pub fn abort(&self, txn: TxnId) -> Result<()> {
        let active = matches!(
            self.storage.txn_manager().state(txn),
            Some(TxnState::Active)
        );
        // Snapshot transactions never accumulate txn-event objects, and
        // posting events on one would fail anyway: skip straight to the
        // storage abort (which releases the snapshot).
        if active && !self.storage.is_read_only(txn) {
            // Best effort: the event postings and any immediate actions
            // they fire are about to be rolled back anyway; their only
            // durable consequence is scheduling !dependent firings.
            let _ = self.post_txn_events(txn, false);
        }
        // Drop the scratchpad wholesale: cached trigger-state advances die
        // here without ever having touched storage.
        let local = self.drop_txn_local(txn);
        self.metrics()
            .abort_queue_depth
            .add(local.indep_list.len() as u64);
        let result = if active {
            self.storage.abort(txn).map_err(Into::into)
        } else {
            Err(crate::error::OdeError::Storage(StorageError::TxnNotActive(
                txn,
            )))
        };
        self.run_detached(local.indep_list, None);
        result
    }

    fn pre_commit(&self, txn: TxnId) -> Result<()> {
        self.drain_end_list(txn)?;
        self.post_txn_events(txn, true)?;
        // tcomplete triggers may themselves schedule end actions.
        self.drain_end_list(txn)?;
        Ok(())
    }

    fn drain_end_list(&self, txn: TxnId) -> Result<()> {
        for _ in 0..MAX_END_ROUNDS {
            let batch: Vec<Firing> = {
                let mut locals = self.txn_local.lock(txn);
                match locals.get_mut(&txn) {
                    Some(local) => std::mem::take(&mut local.end_list),
                    None => Vec::new(),
                }
            };
            if batch.is_empty() {
                return Ok(());
            }
            for firing in batch {
                self.fire(txn, &firing, false)?;
            }
        }
        Err(crate::error::OdeError::Action(
            "end-coupled trigger cascade did not quiesce".into(),
        ))
    }

    /// Post `before tcomplete` / `before tabort` to every object on the
    /// transaction event object list.
    fn post_txn_events(&self, txn: TxnId, complete: bool) -> Result<()> {
        let oids: Vec<ode_storage::Oid> = {
            let locals = self.txn_local.lock(txn);
            locals
                .get(&txn)
                .map(|l| l.txn_event_objects.clone())
                .unwrap_or_default()
        };
        for oid in oids {
            let header = match self.read_raw(txn, oid) {
                Ok((h, _)) => h,
                // Deleted within the transaction: nothing to notify.
                Err(_) => continue,
            };
            let Ok(entry) = self.entry_by_id(header.class_id) else {
                continue;
            };
            for event in entry.td.txn_event_ids(complete) {
                self.post_event(txn, oid, event)?;
            }
        }
        Ok(())
    }

    /// Run detached firings in a fresh system transaction (§5.5: "it
    /// starts a new system transaction … and executes the relevant
    /// actions"). Failures abort only the system transaction and are
    /// counted, not propagated — the user transaction has already
    /// committed or aborted.
    fn run_detached(&self, firings: Vec<Firing>, depends_on: Option<TxnId>) {
        if firings.is_empty() {
            return;
        }
        let coupling = if depends_on.is_some() {
            ode_obs::coupling_label::DEPENDENT
        } else {
            ode_obs::coupling_label::INDEPENDENT
        };
        let run = || -> Result<()> {
            let stxn = self.storage.begin_system()?;
            let mut span = ode_trace::span(ode_trace::SpanKind::SystemTxn, coupling);
            span.payload(stxn.0, depends_on.map_or(0, |t| t.0));
            self.metrics()
                .emit(|| ode_obs::TraceEvent::SystemTxnStarted {
                    txn: stxn.0,
                    parent: depends_on.map(|t| t.0),
                    coupling,
                });
            if let Some(on) = depends_on {
                self.storage.add_commit_dependency(stxn, on)?;
            }
            for firing in &firings {
                if let Err(e) = self.fire(stxn, firing, false) {
                    let _ = self.abort(stxn);
                    return Err(e);
                }
            }
            self.commit(stxn)
        };
        if run().is_err() {
            self.metrics().detached_failures.inc();
        }
    }
}
