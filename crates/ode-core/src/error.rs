//! Errors of the object manager and trigger run-time.

use ode_storage::StorageError;

/// Result alias for ode-core operations.
pub type Result<T> = std::result::Result<T, OdeError>;

/// Errors surfaced by the object manager.
#[derive(Debug)]
pub enum OdeError {
    /// The storage substrate failed (includes lock/transaction errors and
    /// `tabort`, which is carried as [`StorageError::UserAbort`]).
    Storage(StorageError),
    /// A trigger event expression failed to parse.
    Parse(ode_events::ParseError),
    /// A class, trigger, event, or mask name could not be resolved.
    Schema(String),
    /// An object's dynamic class is incompatible with the requested
    /// operation (e.g. activating a trigger of an unrelated class).
    TypeMismatch {
        /// What the operation expected.
        expected: String,
        /// What the object actually is.
        actual: String,
    },
    /// A trigger action failed with an application error message.
    Action(String),
}

impl std::fmt::Display for OdeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OdeError::Storage(e) => write!(f, "storage: {e}"),
            OdeError::Parse(e) => write!(f, "event expression: {e}"),
            OdeError::Schema(m) => write!(f, "schema: {m}"),
            OdeError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, object is {actual}")
            }
            OdeError::Action(m) => write!(f, "trigger action failed: {m}"),
        }
    }
}

impl std::error::Error for OdeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OdeError::Storage(e) => Some(e),
            OdeError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for OdeError {
    fn from(e: StorageError) -> Self {
        OdeError::Storage(e)
    }
}

impl From<ode_events::ParseError> for OdeError {
    fn from(e: ode_events::ParseError) -> Self {
        OdeError::Parse(e)
    }
}

impl OdeError {
    /// Whether the error means the surrounding transaction has aborted (or
    /// must abort): deadlock victim, failed commit dependency, or `tabort`.
    pub fn is_abort(&self) -> bool {
        matches!(self, OdeError::Storage(e) if e.is_abort())
    }

    /// The `tabort` constructor: a trigger action (or application code)
    /// requests transaction abort with a reason (§4's `tabort;`).
    pub fn tabort(reason: &str) -> OdeError {
        OdeError::Storage(StorageError::UserAbort(reason.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tabort_is_an_abort() {
        assert!(OdeError::tabort("over limit").is_abort());
        assert!(!OdeError::Schema("x".into()).is_abort());
    }

    #[test]
    fn display_includes_cause() {
        let e = OdeError::tabort("over limit");
        assert!(e.to_string().contains("over limit"));
        let e = OdeError::TypeMismatch {
            expected: "CredCard".into(),
            actual: "Person".into(),
        };
        assert!(e.to_string().contains("CredCard"));
        assert!(e.to_string().contains("Person"));
    }
}
