//! Administrative checks: verify the invariants that tie the trigger
//! run-time's persistent structures together.
//!
//! The §5 design spreads trigger machinery across three places — the
//! object header flag (§5.4.5 footnote 3), the object→triggers hash index
//! (§5.1.3), and the `TriggerState` records (§5.4.1) — and correctness
//! depends on them agreeing. [`Database::verify_integrity`] walks all
//! three and reports every violation; tests run it after torture
//! scenarios, and operators can run it any time.

use crate::database::Database;
use crate::error::Result;
use crate::trigger::TriggerStateRec;
use ode_storage::{Oid, StorageError, TxnId};

/// One integrity violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrityIssue {
    /// An index entry points at a missing or undecodable TriggerState.
    DanglingIndexEntry {
        /// Packed anchor key.
        anchor: Oid,
        /// The missing state record.
        state: Oid,
    },
    /// A TriggerState is not indexed under one of its anchors.
    MissingIndexEntry {
        /// The anchor lacking the entry.
        anchor: Oid,
        /// The state record.
        state: Oid,
    },
    /// An object has active triggers but its header flag is clear.
    FlagShouldBeSet {
        /// The object.
        anchor: Oid,
    },
    /// An object's header flag is set but it has no active triggers.
    FlagShouldBeClear {
        /// The object.
        anchor: Oid,
    },
    /// A TriggerState names a trigger its (registered) class lacks.
    UnknownTrigger {
        /// The state record.
        state: Oid,
        /// Defining class named by the record.
        class: String,
        /// Trigger name that failed to resolve.
        trigger: String,
    },
    /// A TriggerState's FSM state number is out of range for the compiled
    /// machine.
    StaleStateNumber {
        /// The state record.
        state: Oid,
        /// The stored state number.
        statenum: u32,
        /// The machine's state count.
        fsm_len: usize,
    },
}

/// Report from [`Database::verify_integrity`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntegrityReport {
    /// All violations found (empty = healthy).
    pub issues: Vec<IntegrityIssue>,
    /// TriggerState records inspected.
    pub states_checked: usize,
    /// Distinct anchors appearing in the index.
    pub anchors_checked: usize,
}

impl IntegrityReport {
    /// No violations?
    pub fn is_healthy(&self) -> bool {
        self.issues.is_empty()
    }
}

impl Database {
    /// Cross-check the trigger index, state records, and object header
    /// flags. Read-only. Classes must be registered for trigger-name and
    /// FSM checks to apply (unregistered classes are skipped).
    pub fn verify_integrity(&self, txn: TxnId) -> Result<IntegrityReport> {
        let mut report = IntegrityReport::default();
        let entries = self.trigger_index.entries(&self.storage, txn)?;
        report.anchors_checked = entries.len();

        for (key, states) in &entries {
            let anchor = Oid::from_u64(*key);
            // Flag consistency.
            match self.read_raw(txn, anchor) {
                Ok((header, _)) => {
                    if !states.is_empty() && !header.has_triggers() {
                        report
                            .issues
                            .push(IntegrityIssue::FlagShouldBeSet { anchor });
                    }
                    if states.is_empty() && header.has_triggers() {
                        report
                            .issues
                            .push(IntegrityIssue::FlagShouldBeClear { anchor });
                    }
                }
                Err(_) => { /* anchor deleted with dangling entries handled below */ }
            }
            for &state in states {
                report.states_checked += 1;
                let record = match self.storage.read(txn, state) {
                    Ok(r) => r,
                    Err(StorageError::NoSuchObject(_)) => {
                        report
                            .issues
                            .push(IntegrityIssue::DanglingIndexEntry { anchor, state });
                        continue;
                    }
                    Err(e) => return Err(e.into()),
                };
                let Ok(rec) = TriggerStateRec::decode_with(&record, &self.interner) else {
                    report
                        .issues
                        .push(IntegrityIssue::DanglingIndexEntry { anchor, state });
                    continue;
                };
                // Every anchor of the record must hold an index entry.
                let mut anchors = vec![rec.anchor];
                anchors.extend(rec.anchors.iter().map(|(_, o)| *o));
                anchors.sort_unstable();
                anchors.dedup();
                for a in anchors {
                    let indexed = self
                        .trigger_index
                        .get(&self.storage, txn, a.to_u64())?
                        .contains(&state);
                    if !indexed {
                        report
                            .issues
                            .push(IntegrityIssue::MissingIndexEntry { anchor: a, state });
                    }
                }
                // Descriptor checks, when the class is registered.
                let class_name = self.interner.resolve(rec.class_sym);
                let trigger_name = self.interner.resolve(rec.trigger_sym);
                if let Some(td) = self.descriptor(&class_name) {
                    let resolved = td
                        .trigger_by_num(rec.triggernum as usize)
                        .filter(|i| *i.name == *trigger_name)
                        .or_else(|| td.trigger(&trigger_name).map(|(_, i)| i));
                    match resolved {
                        None => report.issues.push(IntegrityIssue::UnknownTrigger {
                            state,
                            class: class_name.to_string(),
                            trigger: trigger_name.to_string(),
                        }),
                        Some(info) => {
                            if rec.statenum as usize >= info.fsm.len() {
                                report.issues.push(IntegrityIssue::StaleStateNumber {
                                    state,
                                    statenum: rec.statenum,
                                    fsm_len: info.fsm.len(),
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(report)
    }
}
