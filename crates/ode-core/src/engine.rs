//! The multi-database catalog: one [`Engine`] owns many named
//! [`Database`] instances.
//!
//! The paper's Ode is a single-database system; the engine layer is the
//! step from "embedded library" to "multi-tenant service": databases are
//! created, opened, and dropped by name under one root directory
//! (`<root>/<name>`), each with its own [`StorageOptions`], and the
//! per-database `ode-obs` registries are exposed on one Prometheus page
//! distinguished by a `db` label ([`Engine::render_prometheus`]).
//!
//! The embedded API is untouched: a [`Database`] handed out by
//! [`Engine::database`] is exactly the type applications already use, and
//! a standalone `Database::volatile()`/`Database::open()` keeps working
//! without any engine at all. Sessions ([`crate::session::Session`])
//! layer per-client state on top.

use crate::database::Database;
use crate::error::{OdeError, Result};
use crate::session::Session;
use ode_storage::StorageOptions;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// A catalog of named databases under one root directory (or fully in
/// memory), sharing one metrics surface.
pub struct Engine {
    /// `None` for a volatile engine: every database is in-memory and
    /// nothing touches the filesystem.
    root: Option<PathBuf>,
    /// Options applied to databases created/opened without explicit
    /// options.
    default_options: StorageOptions,
    databases: RwLock<HashMap<String, Arc<Database>>>,
}

/// Database names double as directory names; reject anything that could
/// escape the root or confuse the wire surface.
fn validate_name(name: &str) -> Result<()> {
    let mut chars = name.chars();
    let ok_first = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if ok_first && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && name.len() <= 64 {
        Ok(())
    } else {
        Err(OdeError::Schema(format!(
            "invalid database name {name:?}: want [A-Za-z_][A-Za-z0-9_]*, at most 64 chars"
        )))
    }
}

impl Engine {
    /// A fully in-memory engine: every database it creates is volatile.
    pub fn volatile() -> Arc<Engine> {
        Engine::volatile_with(StorageOptions::memory())
    }

    /// [`Engine::volatile`] with explicit default storage options (the
    /// engine kind is forced to memory per database).
    pub fn volatile_with(default_options: StorageOptions) -> Arc<Engine> {
        Arc::new(Engine {
            root: None,
            default_options,
            databases: RwLock::new(HashMap::new()),
        })
    }

    /// Open (creating if needed) an engine rooted at `root`. Databases
    /// live in subdirectories named after them; existing subdirectories
    /// are opened lazily on first [`Engine::database`].
    pub fn open(root: impl Into<PathBuf>, default_options: StorageOptions) -> Result<Arc<Engine>> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| OdeError::Schema(format!("create engine root {root:?}: {e}")))?;
        Ok(Arc::new(Engine {
            root: Some(root),
            default_options,
            databases: RwLock::new(HashMap::new()),
        }))
    }

    /// The default storage options given to databases created without
    /// explicit options.
    pub fn default_options(&self) -> &StorageOptions {
        &self.default_options
    }

    /// Create a database with the engine's default options.
    pub fn create_database(&self, name: &str) -> Result<Arc<Database>> {
        self.create_database_with(name, self.default_options.clone())
    }

    /// Create a database with explicit per-database options. Errors if a
    /// database of that name already exists (in the catalog or on disk).
    pub fn create_database_with(
        &self,
        name: &str,
        options: StorageOptions,
    ) -> Result<Arc<Database>> {
        validate_name(name)?;
        let mut map = self.databases.write();
        if map.contains_key(name) {
            return Err(OdeError::Schema(format!(
                "database {name:?} already exists"
            )));
        }
        let db = match &self.root {
            None => Arc::new(Database::volatile_with(options)),
            Some(root) => {
                let dir = root.join(name);
                if dir.exists() {
                    return Err(OdeError::Schema(format!(
                        "database {name:?} already exists"
                    )));
                }
                Arc::new(Database::create(&dir, options)?)
            }
        };
        map.insert(name.to_string(), Arc::clone(&db));
        Ok(db)
    }

    /// Look up a database by name, opening it from disk (with the default
    /// options, running recovery when needed) on first touch.
    pub fn database(&self, name: &str) -> Result<Arc<Database>> {
        self.database_with(name, self.default_options.clone())
    }

    /// [`Engine::database`] with explicit options for the open-from-disk
    /// case (ignored when the database is already attached).
    pub fn database_with(&self, name: &str, options: StorageOptions) -> Result<Arc<Database>> {
        validate_name(name)?;
        if let Some(db) = self.databases.read().get(name) {
            return Ok(Arc::clone(db));
        }
        let mut map = self.databases.write();
        if let Some(db) = map.get(name) {
            return Ok(Arc::clone(db));
        }
        let Some(root) = &self.root else {
            return Err(OdeError::Schema(format!("unknown database {name:?}")));
        };
        let dir = root.join(name);
        if !dir.is_dir() {
            return Err(OdeError::Schema(format!("unknown database {name:?}")));
        }
        let db = Arc::new(Database::open(&dir, options)?);
        map.insert(name.to_string(), Arc::clone(&db));
        Ok(db)
    }

    /// Drop a database: detach it from the catalog and (for disk engines)
    /// close it and delete its directory. Refuses while other handles —
    /// sessions, servers — still hold the database.
    pub fn drop_database(&self, name: &str) -> Result<()> {
        validate_name(name)?;
        let mut map = self.databases.write();
        let attached = map.remove(name);
        match (attached, &self.root) {
            (Some(db), root) => match Arc::try_unwrap(db) {
                Ok(db) => {
                    db.close()?;
                    if let Some(root) = root {
                        std::fs::remove_dir_all(root.join(name)).map_err(|e| {
                            OdeError::Schema(format!("remove database {name:?}: {e}"))
                        })?;
                    }
                    Ok(())
                }
                Err(shared) => {
                    // Put it back; dropping a database out from under a
                    // live session would leave dangling storage handles.
                    map.insert(name.to_string(), shared);
                    Err(OdeError::Schema(format!(
                        "database {name:?} is busy (open sessions hold it)"
                    )))
                }
            },
            (None, Some(root)) => {
                let dir = root.join(name);
                if dir.is_dir() {
                    std::fs::remove_dir_all(&dir)
                        .map_err(|e| OdeError::Schema(format!("remove database {name:?}: {e}")))?;
                    Ok(())
                } else {
                    Err(OdeError::Schema(format!("unknown database {name:?}")))
                }
            }
            (None, None) => Err(OdeError::Schema(format!("unknown database {name:?}"))),
        }
    }

    /// Names of all databases: attached ones plus (for disk engines)
    /// not-yet-opened subdirectories of the root. Sorted.
    pub fn list_databases(&self) -> Vec<String> {
        let mut names: Vec<String> = self.databases.read().keys().cloned().collect();
        if let Some(root) = &self.root {
            if let Ok(entries) = std::fs::read_dir(root) {
                for entry in entries.flatten() {
                    if entry.path().is_dir() {
                        if let Some(name) = entry.file_name().to_str() {
                            if validate_name(name).is_ok() && !names.iter().any(|n| n == name) {
                                names.push(name.to_string());
                            }
                        }
                    }
                }
            }
        }
        names.sort();
        names
    }

    /// One Prometheus page covering every attached database: each
    /// database's full metrics snapshot rendered with a `db="<name>"`
    /// label on every sample.
    pub fn render_prometheus(&self) -> String {
        let mut dbs: Vec<(String, Arc<Database>)> = self
            .databases
            .read()
            .iter()
            .map(|(n, d)| (n.clone(), Arc::clone(d)))
            .collect();
        dbs.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::new();
        for (name, db) in dbs {
            out.push_str(
                &db.stats()
                    .render_prometheus_labeled(&format!("db=\"{name}\"")),
            );
        }
        out
    }

    /// Start a session: per-client state (current database, open
    /// transaction, scratch buffers) layered over this engine.
    pub fn session(self: &Arc<Self>) -> Session {
        Session::new(Arc::clone(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volatile_engine_creates_and_lists_databases() {
        let engine = Engine::volatile();
        engine.create_database("alpha").unwrap();
        engine.create_database("beta").unwrap();
        assert_eq!(engine.list_databases(), vec!["alpha", "beta"]);
        assert!(engine.create_database("alpha").is_err(), "duplicate");
        assert!(engine.database("gamma").is_err(), "unknown");
        let db = engine.database("alpha").unwrap();
        db.with_txn(|_| Ok(())).unwrap();
    }

    #[test]
    fn names_that_escape_the_root_are_rejected() {
        let engine = Engine::volatile();
        for bad in ["../evil", "a/b", "", ".hidden", "name with spaces", "7up"] {
            assert!(engine.create_database(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn drop_refuses_while_handles_are_live() {
        let engine = Engine::volatile();
        let held = engine.create_database("held").unwrap();
        assert!(engine.drop_database("held").is_err());
        drop(held);
        engine.drop_database("held").unwrap();
        assert!(engine.list_databases().is_empty());
    }

    #[test]
    fn prometheus_page_labels_every_database() {
        let engine = Engine::volatile();
        engine.create_database("bank").unwrap();
        engine.create_database("shop").unwrap();
        let page = engine.render_prometheus();
        assert!(page.contains("ode_txn_commits{db=\"bank\"}"));
        assert!(page.contains("ode_txn_commits{db=\"shop\"}"));
    }
}
