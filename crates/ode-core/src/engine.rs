//! The multi-database catalog: one [`Engine`] owns many named
//! [`Database`] instances.
//!
//! The paper's Ode is a single-database system; the engine layer is the
//! step from "embedded library" to "multi-tenant service": databases are
//! created, opened, and dropped by name under one root directory
//! (`<root>/<name>`), each with its own [`StorageOptions`], and the
//! per-database `ode-obs` registries are exposed on one Prometheus page
//! distinguished by a `db` label ([`Engine::render_prometheus`]).
//!
//! The embedded API is untouched: a [`Database`] handed out by
//! [`Engine::database`] is exactly the type applications already use, and
//! a standalone `Database::volatile()`/`Database::open()` keeps working
//! without any engine at all. Sessions ([`crate::session::Session`])
//! layer per-client state on top.

use crate::database::Database;
use crate::error::{OdeError, Result};
use crate::session::Session;
use ode_storage::StorageOptions;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A catalog of named databases under one root directory (or fully in
/// memory), sharing one metrics surface.
pub struct Engine {
    /// `None` for a volatile engine: every database is in-memory and
    /// nothing touches the filesystem.
    root: Option<PathBuf>,
    /// Options applied to databases created/opened without explicit
    /// options.
    default_options: StorageOptions,
    databases: RwLock<HashMap<String, Arc<Database>>>,
    stats: EngineStats,
}

/// Statement verbs the per-verb counter distinguishes; anything else
/// lands in `other`. Ordered as rendered on the Prometheus page.
const VERBS: &[&str] = &[
    "begin",
    "commit",
    "abort",
    "use",
    "create",
    "drop",
    "show",
    "new",
    "call",
    "get",
    "activate",
    "deactivate",
    "metrics",
    "checkpoint",
    "trace",
    "explain",
    "prepare",
    "execute",
    "other",
];

/// Engine-wide (cross-database) observability: session and transaction
/// gauges, statements by verb, and wire-layer counters. Everything a
/// scrape needs that is not attributable to a single database.
pub struct EngineStats {
    sessions_open: AtomicU64,
    txns_open: AtomicU64,
    /// Inbound wire frames rejected for exceeding the frame-size limit
    /// (bumped by `ode-server`).
    pub frames_oversized: AtomicU64,
    /// Inbound protocol-v2 batch frames accepted (bumped by
    /// `ode-server`); v1 single-statement frames are not counted here.
    pub frames_batched: AtomicU64,
    /// Statements carried per accepted batch frame (bumped by
    /// `ode-server`).
    pub stmts_per_frame: ode_obs::Histogram,
    prepared_hits: AtomicU64,
    prepared_misses: AtomicU64,
    verbs: [AtomicU64; VERBS.len()],
}

impl EngineStats {
    fn new() -> EngineStats {
        EngineStats {
            sessions_open: AtomicU64::new(0),
            txns_open: AtomicU64::new(0),
            frames_oversized: AtomicU64::new(0),
            frames_batched: AtomicU64::new(0),
            stmts_per_frame: ode_obs::Histogram::new(),
            prepared_hits: AtomicU64::new(0),
            prepared_misses: AtomicU64::new(0),
            verbs: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Count one statement served from a parse cache (the session's
    /// transparent text-keyed cache or a named `PREPARE`d statement).
    pub(crate) fn prepared_hit(&self) {
        self.prepared_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one statement that had to run the DDL parser.
    pub(crate) fn prepared_miss(&self) {
        self.prepared_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Statements served without re-parsing (see `prepared_hit`).
    pub fn prepared_hits(&self) -> u64 {
        self.prepared_hits.load(Ordering::Relaxed)
    }

    /// Statements that ran the DDL parser (see `prepared_miss`).
    pub fn prepared_misses(&self) -> u64 {
        self.prepared_misses.load(Ordering::Relaxed)
    }

    pub(crate) fn session_opened(&self) {
        self.sessions_open.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn session_closed(&self) {
        self.sessions_open.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn txn_opened(&self) {
        self.txns_open.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn txn_closed(&self) {
        self.txns_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Count one executed statement under its leading verb
    /// (case-insensitive; unknown verbs count as `other`).
    pub(crate) fn record_statement(&self, verb: &str) {
        let idx = VERBS
            .iter()
            .position(|v| verb.eq_ignore_ascii_case(v))
            .unwrap_or(VERBS.len() - 1);
        self.verbs[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Sessions currently open.
    pub fn sessions_open(&self) -> u64 {
        self.sessions_open.load(Ordering::Relaxed)
    }

    /// Session transactions currently open.
    pub fn txns_open(&self) -> u64 {
        self.txns_open.load(Ordering::Relaxed)
    }

    /// Statements executed under `verb` (see `record_statement`).
    pub fn statements(&self, verb: &str) -> u64 {
        let idx = VERBS
            .iter()
            .position(|v| verb.eq_ignore_ascii_case(v))
            .unwrap_or(VERBS.len() - 1);
        self.verbs[idx].load(Ordering::Relaxed)
    }

    fn render_prometheus_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "# HELP ode_sessions_open Sessions currently open on this engine."
        );
        let _ = writeln!(out, "# TYPE ode_sessions_open gauge");
        let _ = writeln!(out, "ode_sessions_open {}", self.sessions_open());
        let _ = writeln!(
            out,
            "# HELP ode_txns_open Session transactions currently open."
        );
        let _ = writeln!(out, "# TYPE ode_txns_open gauge");
        let _ = writeln!(out, "ode_txns_open {}", self.txns_open());
        let _ = writeln!(
            out,
            "# HELP ode_frames_oversized Inbound wire frames rejected for exceeding the frame-size limit."
        );
        let _ = writeln!(out, "# TYPE ode_frames_oversized counter");
        let _ = writeln!(
            out,
            "ode_frames_oversized {}",
            self.frames_oversized.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# HELP ode_frames_batched Inbound protocol-v2 batch frames accepted by the wire layer."
        );
        let _ = writeln!(out, "# TYPE ode_frames_batched counter");
        let _ = writeln!(
            out,
            "ode_frames_batched {}",
            self.frames_batched.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# HELP ode_prepared_hits Statements served from a session parse cache (transparent or PREPAREd)."
        );
        let _ = writeln!(out, "# TYPE ode_prepared_hits counter");
        let _ = writeln!(out, "ode_prepared_hits {}", self.prepared_hits());
        let _ = writeln!(
            out,
            "# HELP ode_prepared_misses Statements that ran the DDL parser."
        );
        let _ = writeln!(out, "# TYPE ode_prepared_misses counter");
        let _ = writeln!(out, "ode_prepared_misses {}", self.prepared_misses());
        self.stmts_per_frame.snapshot().render_prometheus_into(
            out,
            "stmts_per_frame",
            "Statements carried per accepted protocol-v2 batch frame.",
        );
        let _ = writeln!(
            out,
            "# HELP ode_statements_total Statements executed through sessions, by leading verb."
        );
        let _ = writeln!(out, "# TYPE ode_statements_total counter");
        for (verb, count) in VERBS.iter().zip(&self.verbs) {
            let _ = writeln!(
                out,
                "ode_statements_total{{verb=\"{verb}\"}} {}",
                count.load(Ordering::Relaxed)
            );
        }
    }
}

/// Database names double as directory names; reject anything that could
/// escape the root or confuse the wire surface.
fn validate_name(name: &str) -> Result<()> {
    let mut chars = name.chars();
    let ok_first = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if ok_first && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && name.len() <= 64 {
        Ok(())
    } else {
        Err(OdeError::Schema(format!(
            "invalid database name {name:?}: want [A-Za-z_][A-Za-z0-9_]*, at most 64 chars"
        )))
    }
}

impl Engine {
    /// A fully in-memory engine: every database it creates is volatile.
    pub fn volatile() -> Arc<Engine> {
        Engine::volatile_with(StorageOptions::memory())
    }

    /// [`Engine::volatile`] with explicit default storage options (the
    /// engine kind is forced to memory per database).
    pub fn volatile_with(default_options: StorageOptions) -> Arc<Engine> {
        Arc::new(Engine {
            root: None,
            default_options,
            databases: RwLock::new(HashMap::new()),
            stats: EngineStats::new(),
        })
    }

    /// Open (creating if needed) an engine rooted at `root`. Databases
    /// live in subdirectories named after them; existing subdirectories
    /// are opened lazily on first [`Engine::database`].
    pub fn open(root: impl Into<PathBuf>, default_options: StorageOptions) -> Result<Arc<Engine>> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| OdeError::Schema(format!("create engine root {root:?}: {e}")))?;
        Ok(Arc::new(Engine {
            root: Some(root),
            default_options,
            databases: RwLock::new(HashMap::new()),
            stats: EngineStats::new(),
        }))
    }

    /// Engine-wide session/statement/wire statistics (rendered on the
    /// Prometheus page alongside the per-database families).
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The default storage options given to databases created without
    /// explicit options.
    pub fn default_options(&self) -> &StorageOptions {
        &self.default_options
    }

    /// Create a database with the engine's default options.
    pub fn create_database(&self, name: &str) -> Result<Arc<Database>> {
        self.create_database_with(name, self.default_options.clone())
    }

    /// Create a database with explicit per-database options. Errors if a
    /// database of that name already exists (in the catalog or on disk).
    pub fn create_database_with(
        &self,
        name: &str,
        options: StorageOptions,
    ) -> Result<Arc<Database>> {
        validate_name(name)?;
        let mut map = self.databases.write();
        if map.contains_key(name) {
            return Err(OdeError::Schema(format!(
                "database {name:?} already exists"
            )));
        }
        let db = match &self.root {
            None => Arc::new(Database::volatile_with(options)),
            Some(root) => {
                let dir = root.join(name);
                if dir.exists() {
                    return Err(OdeError::Schema(format!(
                        "database {name:?} already exists"
                    )));
                }
                Arc::new(Database::create(&dir, options)?)
            }
        };
        map.insert(name.to_string(), Arc::clone(&db));
        Ok(db)
    }

    /// Look up a database by name, opening it from disk (with the default
    /// options, running recovery when needed) on first touch.
    pub fn database(&self, name: &str) -> Result<Arc<Database>> {
        self.database_with(name, self.default_options.clone())
    }

    /// [`Engine::database`] with explicit options for the open-from-disk
    /// case (ignored when the database is already attached).
    pub fn database_with(&self, name: &str, options: StorageOptions) -> Result<Arc<Database>> {
        validate_name(name)?;
        if let Some(db) = self.databases.read().get(name) {
            return Ok(Arc::clone(db));
        }
        let mut map = self.databases.write();
        if let Some(db) = map.get(name) {
            return Ok(Arc::clone(db));
        }
        let Some(root) = &self.root else {
            return Err(OdeError::Schema(format!("unknown database {name:?}")));
        };
        let dir = root.join(name);
        if !dir.is_dir() {
            return Err(OdeError::Schema(format!("unknown database {name:?}")));
        }
        let db = Arc::new(Database::open(&dir, options)?);
        map.insert(name.to_string(), Arc::clone(&db));
        Ok(db)
    }

    /// Drop a database: detach it from the catalog and (for disk engines)
    /// close it and delete its directory. Refuses while other handles —
    /// sessions, servers — still hold the database.
    pub fn drop_database(&self, name: &str) -> Result<()> {
        validate_name(name)?;
        let mut map = self.databases.write();
        let attached = map.remove(name);
        match (attached, &self.root) {
            (Some(db), root) => match Arc::try_unwrap(db) {
                Ok(db) => {
                    db.close()?;
                    if let Some(root) = root {
                        std::fs::remove_dir_all(root.join(name)).map_err(|e| {
                            OdeError::Schema(format!("remove database {name:?}: {e}"))
                        })?;
                    }
                    Ok(())
                }
                Err(shared) => {
                    // Put it back; dropping a database out from under a
                    // live session would leave dangling storage handles.
                    map.insert(name.to_string(), shared);
                    Err(OdeError::Schema(format!(
                        "database {name:?} is busy (open sessions hold it)"
                    )))
                }
            },
            (None, Some(root)) => {
                let dir = root.join(name);
                if dir.is_dir() {
                    std::fs::remove_dir_all(&dir)
                        .map_err(|e| OdeError::Schema(format!("remove database {name:?}: {e}")))?;
                    Ok(())
                } else {
                    Err(OdeError::Schema(format!("unknown database {name:?}")))
                }
            }
            (None, None) => Err(OdeError::Schema(format!("unknown database {name:?}"))),
        }
    }

    /// Names of all databases: attached ones plus (for disk engines)
    /// not-yet-opened subdirectories of the root. Sorted.
    pub fn list_databases(&self) -> Vec<String> {
        let mut names: Vec<String> = self.databases.read().keys().cloned().collect();
        if let Some(root) = &self.root {
            if let Ok(entries) = std::fs::read_dir(root) {
                for entry in entries.flatten() {
                    if entry.path().is_dir() {
                        if let Some(name) = entry.file_name().to_str() {
                            if validate_name(name).is_ok() && !names.iter().any(|n| n == name) {
                                names.push(name.to_string());
                            }
                        }
                    }
                }
            }
        }
        names.sort();
        names
    }

    /// One Prometheus page covering every attached database plus the
    /// engine-wide families. Per-database samples carry a `db="<name>"`
    /// label; samples of the same family are merged under a single
    /// HELP/TYPE header, so the page stays exposition-conformant with
    /// any number of databases.
    pub fn render_prometheus(&self) -> String {
        let mut dbs: Vec<(String, Arc<Database>)> = self
            .databases
            .read()
            .iter()
            .map(|(n, d)| (n.clone(), Arc::clone(d)))
            .collect();
        dbs.sort_by(|a, b| a.0.cmp(&b.0));

        // Every page comes out of the same `metrics!` renderer, so the
        // family order is identical across databases; merge per family,
        // keeping the first page's HELP/TYPE header and interleaving
        // each later page's samples into its family block.
        let mut order: Vec<String> = Vec::new();
        let mut families: HashMap<String, (Vec<String>, Vec<String>)> = HashMap::new();
        for (name, db) in dbs {
            let page = db
                .stats()
                .render_prometheus_labeled(&format!("db=\"{name}\""));
            let mut current: Option<String> = None;
            for line in page.lines() {
                if let Some(rest) = line.strip_prefix("# HELP ") {
                    let fam = rest.split(' ').next().unwrap_or("").to_string();
                    let entry = families.entry(fam.clone()).or_default();
                    if entry.0.is_empty() {
                        order.push(fam.clone());
                        entry.0.push(line.to_string());
                    }
                    current = Some(fam);
                } else if line.starts_with("# TYPE ") {
                    if let Some(fam) = &current {
                        let entry = families.entry(fam.clone()).or_default();
                        if entry.0.len() == 1 {
                            entry.0.push(line.to_string());
                        }
                    }
                } else if let Some(fam) = &current {
                    families
                        .entry(fam.clone())
                        .or_default()
                        .1
                        .push(line.to_string());
                }
            }
        }
        let mut out = String::new();
        for fam in order {
            let (header, samples) = &families[&fam];
            for line in header.iter().chain(samples) {
                out.push_str(line);
                out.push('\n');
            }
        }
        self.stats.render_prometheus_into(&mut out);
        out
    }

    /// Start a session: per-client state (current database, open
    /// transaction, scratch buffers) layered over this engine.
    pub fn session(self: &Arc<Self>) -> Session {
        Session::new(Arc::clone(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volatile_engine_creates_and_lists_databases() {
        let engine = Engine::volatile();
        engine.create_database("alpha").unwrap();
        engine.create_database("beta").unwrap();
        assert_eq!(engine.list_databases(), vec!["alpha", "beta"]);
        assert!(engine.create_database("alpha").is_err(), "duplicate");
        assert!(engine.database("gamma").is_err(), "unknown");
        let db = engine.database("alpha").unwrap();
        db.with_txn(|_| Ok(())).unwrap();
    }

    #[test]
    fn names_that_escape_the_root_are_rejected() {
        let engine = Engine::volatile();
        for bad in ["../evil", "a/b", "", ".hidden", "name with spaces", "7up"] {
            assert!(engine.create_database(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn drop_refuses_while_handles_are_live() {
        let engine = Engine::volatile();
        let held = engine.create_database("held").unwrap();
        assert!(engine.drop_database("held").is_err());
        drop(held);
        engine.drop_database("held").unwrap();
        assert!(engine.list_databases().is_empty());
    }

    #[test]
    fn prometheus_page_labels_every_database() {
        let engine = Engine::volatile();
        engine.create_database("bank").unwrap();
        engine.create_database("shop").unwrap();
        let page = engine.render_prometheus();
        assert!(page.contains("ode_txn_commits{db=\"bank\"}"));
        assert!(page.contains("ode_txn_commits{db=\"shop\"}"));
    }
}
