//! Type descriptors — the compiler-generated `type_CredCard` machinery of
//! §5.4.
//!
//! In Ode, the O++ compiler emits a *type descriptor* per class holding
//! "the machinery for a trigger (e.g. its FSM, its action code, etc.)"
//! (§5.4.1): the class's declared events, its mask functions (§5.4.2), and
//! an array of [`TriggerInfo`]s — "a pointer to a finite state machine, a
//! pointer to a trigger function, an indication as to whether or not the
//! trigger is perpetual, and a coupling mode" (§5.4.4). This module is the
//! run-time shape of that descriptor; [`crate::class::ClassBuilder`] plays
//! the compiler's role and constructs it.

use crate::context::TriggerCtx;
use crate::error::Result;
use ode_events::ast::Alphabet;
use ode_events::dfa::Dfa;
use ode_events::event::{BasicEvent, EventId, EventTime, MaskId};
use std::sync::Arc;

/// A mask predicate (§5.4.2: "a static member function is generated to
/// evaluate each mask").
pub type MaskFn = Arc<dyn for<'a, 'b> Fn(&'a mut TriggerCtx<'b>) -> Result<bool> + Send + Sync>;

/// A trigger action (§5.4.2: "trigger actions are similarly encapsulated
/// in member functions").
pub type ActionFn = Arc<dyn for<'a, 'b> Fn(&'a mut TriggerCtx<'b>) -> Result<()> + Send + Sync>;

/// ECA coupling modes supported by Ode (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CouplingMode {
    /// Fire "immediately after its composite event has been detected".
    Immediate,
    /// `end` (deferred): fire "right before the transaction attempts to
    /// commit".
    End,
    /// `dependent` (separate dependent): fire in a separate transaction
    /// with a commit dependency on the detecting transaction.
    Dependent,
    /// `!dependent` (separate independent): fire in a separate transaction
    /// with **no** commit dependency — it runs "even if the event
    /// detecting transaction aborts".
    Independent,
}

impl std::fmt::Display for CouplingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CouplingMode::Immediate => write!(f, "immediate"),
            CouplingMode::End => write!(f, "end"),
            CouplingMode::Dependent => write!(f, "dependent"),
            CouplingMode::Independent => write!(f, "!dependent"),
        }
    }
}

/// Everything the run-time needs to process one trigger (§5.4.4's
/// `TriggerInfo`).
pub struct TriggerInfo {
    /// Trigger name (e.g. `DenyCredit`).
    pub name: String,
    /// The compiled event-recognition FSM, shared by all activations.
    pub fsm: Dfa,
    /// The action run when the trigger fires.
    pub action: ActionFn,
    /// Perpetual triggers stay active after firing; others are
    /// deactivated after their first firing (§4).
    pub perpetual: bool,
    /// When/where the action executes relative to the detecting
    /// transaction.
    pub coupling: CouplingMode,
    /// The original event expression text (for display/debugging).
    pub event_source: String,
}

impl std::fmt::Debug for TriggerInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TriggerInfo")
            .field("name", &self.name)
            .field("event", &self.event_source)
            .field("perpetual", &self.perpetual)
            .field("coupling", &self.coupling)
            .field("fsm_states", &self.fsm.len())
            .finish()
    }
}

/// The run-time type descriptor of a class.
pub struct TypeDescriptor {
    name: String,
    bases: Vec<Arc<TypeDescriptor>>,
    /// Resolution context for this class's trigger expressions: all
    /// declared events (own + inherited) and this class's masks.
    alphabet: Alphabet,
    /// Every declared event with its globally unique id and defining class
    /// (inherited events keep their base-class ids — the §6 lesson).
    all_events: Vec<(BasicEvent, EventId, String)>,
    /// Mask functions, indexed by [`MaskId`].
    masks: Vec<(String, MaskFn)>,
    /// Triggers declared *in this class* (inherited triggers are processed
    /// through their defining class's descriptor, as `trigobjtype`
    /// dictates — §5.4.1).
    triggers: Vec<TriggerInfo>,
    /// Whether this class (or a base) declared interest in transaction
    /// events.
    txn_events: bool,
}

impl TypeDescriptor {
    pub(crate) fn new(
        name: String,
        bases: Vec<Arc<TypeDescriptor>>,
        alphabet: Alphabet,
        all_events: Vec<(BasicEvent, EventId, String)>,
        masks: Vec<(String, MaskFn)>,
        triggers: Vec<TriggerInfo>,
        txn_events: bool,
    ) -> TypeDescriptor {
        TypeDescriptor {
            name,
            bases,
            alphabet,
            all_events,
            masks,
            triggers,
            txn_events,
        }
    }

    /// Class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Direct base classes.
    pub fn bases(&self) -> &[Arc<TypeDescriptor>] {
        &self.bases
    }

    /// Is this class `other` or derived (transitively) from `other`?
    pub fn is_subclass_of(&self, other: &str) -> bool {
        self.name == other || self.bases.iter().any(|b| b.is_subclass_of(other))
    }

    /// The expression-resolution alphabet of this class.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// All declared events (own + inherited) with ids and defining class.
    pub fn events(&self) -> &[(BasicEvent, EventId, String)] {
        &self.all_events
    }

    /// The id of a declared event, if any.
    pub fn event_id(&self, event: &BasicEvent) -> Option<EventId> {
        self.all_events
            .iter()
            .find(|(e, _, _)| e == event)
            .map(|(_, id, _)| *id)
    }

    /// The id of `before f`/`after f` for member `f`, if declared.
    pub fn member_event(&self, method: &str, time: EventTime) -> Option<EventId> {
        self.event_id(&BasicEvent::Member {
            name: method.to_string(),
            time,
        })
    }

    /// The id of `timer <name>`, if declared. Compares the name in place
    /// so callers on per-tick paths ([`crate::database::Database::tick`])
    /// never build a temporary [`BasicEvent`].
    pub fn timer_event(&self, name: &str) -> Option<EventId> {
        self.all_events.iter().find_map(|(e, id, _)| match e {
            BasicEvent::Timer { name: n } if n == name => Some(*id),
            _ => None,
        })
    }

    /// Triggers declared in this class.
    pub fn triggers(&self) -> &[TriggerInfo] {
        &self.triggers
    }

    /// Find a trigger by name; returns its `triggernum` and info.
    pub fn trigger(&self, name: &str) -> Option<(usize, &TriggerInfo)> {
        self.triggers
            .iter()
            .enumerate()
            .find(|(_, t)| t.name == name)
    }

    /// A trigger by its number (the paper's `triggernum`).
    pub fn trigger_by_num(&self, num: usize) -> Option<&TriggerInfo> {
        self.triggers.get(num)
    }

    /// The mask function behind a [`MaskId`].
    pub fn mask_fn(&self, id: MaskId) -> Option<&MaskFn> {
        self.masks.get(id.0 as usize).map(|(_, f)| f)
    }

    /// Whether objects of this class must be put on the transaction-event
    /// object list when first accessed (§5.5).
    pub fn wants_txn_events(&self) -> bool {
        self.txn_events || self.bases.iter().any(|b| b.wants_txn_events())
    }

    /// Every declared transaction-event id in this class's hierarchy.
    /// `complete` selects `before tcomplete` (true) vs `before tabort`.
    pub fn txn_event_ids(&self, complete: bool) -> Vec<EventId> {
        let wanted = if complete {
            BasicEvent::TxnComplete
        } else {
            BasicEvent::TxnAbort
        };
        let mut ids: Vec<EventId> = self
            .all_events
            .iter()
            .filter(|(e, _, _)| *e == wanted)
            .map(|(_, id, _)| *id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

impl std::fmt::Debug for TypeDescriptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TypeDescriptor")
            .field("name", &self.name)
            .field(
                "bases",
                &self.bases.iter().map(|b| b.name()).collect::<Vec<_>>(),
            )
            .field("events", &self.all_events.len())
            .field("triggers", &self.triggers)
            .field("txn_events", &self.txn_events)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassBuilder;
    use ode_events::registry::EventRegistry;

    #[test]
    fn subclass_relation_is_transitive() {
        let reg = EventRegistry::new();
        let a = ClassBuilder::new("A").build(&reg).unwrap();
        let b = ClassBuilder::new("B").base(&a).build(&reg).unwrap();
        let c = ClassBuilder::new("C").base(&b).build(&reg).unwrap();
        assert!(c.is_subclass_of("A"));
        assert!(c.is_subclass_of("B"));
        assert!(c.is_subclass_of("C"));
        assert!(!a.is_subclass_of("B"));
    }

    #[test]
    fn coupling_mode_display() {
        assert_eq!(CouplingMode::Immediate.to_string(), "immediate");
        assert_eq!(CouplingMode::Independent.to_string(), "!dependent");
    }
}
