//! Persistent trigger state (§5.4.1).
//!
//! "The trigger state is stored in a persistent data structure, since it
//! must persist across transactions":
//!
//! ```text
//! persistent struct TriggerState {
//!     unsigned int triggernum;
//!     persistent void *trigobj;
//!     int statenum;
//!     persistent metatype *trigobjtype;
//! };
//! typedef persistent TriggerState *TriggerId;
//! ```
//!
//! Our record carries the same fields — `triggernum`, the anchor object
//! (`trigobj`), the FSM state (`statenum`), and the defining class
//! (`trigobjtype`, needed "because of inheritance since an object can have
//! active triggers from several base classes") — plus the activation
//! parameters (the paper subclasses `TriggerState` per trigger to hold
//! them, e.g. `CredCardAutoRaiseLimitStruct`; we store them as an encoded
//! blob) and, for the inter-object extension, the named anchor list.
//!
//! On disk the class and trigger are stored *by name* (robust against
//! id reassignment between sessions); in memory they are interned
//! [`Sym`]s so the posting hot path never touches a `String`. Shared
//! fields (`params`, `anchors`) sit behind `Arc`s, making the
//! record — and the [`Firing`](crate::post::Firing)s cut from it —
//! cheap to clone.
//!
//! [`TriggerId`] is, as in the paper, simply the persistent pointer to the
//! state record.
//!
//! Because the record lives in ordinary storage, its `statenum` advances
//! participate in MVCC like any object write: the committing transaction
//! installs the new statenum as a fresh version, so a read-only snapshot
//! transaction (e.g. [`Database::trigger_statenum`] inside
//! `with_read_txn`) sees a committed-prefix-consistent FSM position
//! without taking the §6 read lock at all.
//!
//! [`Database::trigger_statenum`]: crate::database::Database::trigger_statenum

use crate::intern::{Interner, Sym};
use bytes::{BufMut, BytesMut};
use ode_storage::codec::{Blob, Decode, Encode};
use ode_storage::{Oid, StorageError};
use std::sync::Arc;

/// Handle for deactivating a trigger — "trigger activation returns a
/// TriggerId which can be used to deactivate the trigger" (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TriggerId(pub(crate) Oid);

impl TriggerId {
    /// The underlying persistent state record's Oid.
    pub fn oid(&self) -> Oid {
        self.0
    }

    /// Rebuild a TriggerId from a stored Oid (e.g. kept in an application
    /// object across transactions, as `AutoRaise` is in §4.1).
    pub fn from_oid(oid: Oid) -> TriggerId {
        TriggerId(oid)
    }
}

impl std::fmt::Display for TriggerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trigger@{}", self.0)
    }
}

/// The persistent trigger state record (in-memory, interned form).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TriggerStateRec {
    /// Index into the defining class's trigger table.
    pub triggernum: u32,
    /// Trigger name (redundant with `triggernum`; used to re-resolve if a
    /// class definition reorders its triggers between sessions).
    pub trigger_sym: Sym,
    /// Current FSM state.
    pub statenum: u32,
    /// Defining class (`trigobjtype`).
    pub class_sym: Sym,
    /// Anchor object (`trigobj`).
    pub anchor: Oid,
    /// Encoded activation parameters.
    pub params: Arc<[u8]>,
    /// Named anchors (inter-object triggers only; empty otherwise).
    pub anchors: Arc<[(String, Oid)]>,
}

impl TriggerStateRec {
    /// Encode in the on-disk (name-based) layout: `triggernum`,
    /// `trigger_name`, `statenum`, `class_name`, `anchor`, params blob,
    /// anchors.
    pub fn encode_with(&self, interner: &Interner, buf: &mut BytesMut) {
        self.triggernum.encode(buf);
        interner.resolve(self.trigger_sym).encode(buf);
        self.statenum.encode(buf);
        interner.resolve(self.class_sym).encode(buf);
        self.anchor.encode(buf);
        buf.put_u32_le(self.params.len() as u32);
        buf.put_slice(&self.params);
        buf.put_u32_le(self.anchors.len() as u32);
        for a in self.anchors.iter() {
            a.encode(buf);
        }
    }

    /// Encode into a fresh `Vec` (activation path; not hot).
    pub fn encode_to_vec_with(&self, interner: &Interner) -> Vec<u8> {
        let mut buf = BytesMut::new();
        self.encode_with(interner, &mut buf);
        buf.to_vec()
    }

    /// Decode the full record, interning the names, and require every
    /// byte consumed (like `decode_all`).
    pub fn decode_with(mut bytes: &[u8], interner: &Interner) -> ode_storage::Result<Self> {
        let buf = &mut bytes;
        let rec = TriggerStateRec {
            triggernum: u32::decode(buf)?,
            trigger_sym: interner.intern(&String::decode(buf)?),
            statenum: u32::decode(buf)?,
            class_sym: interner.intern(&String::decode(buf)?),
            anchor: Oid::decode(buf)?,
            params: Blob::decode(buf)?.0.into(),
            anchors: Vec::<(String, Oid)>::decode(buf)?.into(),
        };
        if !buf.is_empty() {
            return Err(StorageError::Codec(format!(
                "{} trailing bytes after TriggerState decode",
                buf.len()
            )));
        }
        Ok(rec)
    }

    /// Byte offset of `statenum` within the encoded record: after the
    /// `u32` triggernum and the length-prefixed trigger name.
    pub fn statenum_offset(trigger_name_len: usize) -> usize {
        4 + 4 + trigger_name_len
    }
}

/// A trigger state checked into the per-transaction cache: the decoded
/// record plus the on-disk image it came from. `statenum` advances in
/// `rec` only; the image is patched (at [`statenum_offset`]) and written
/// back in one pass at commit when `dirty`. Aborts simply drop the
/// cache — storage was never touched.
///
/// `dirty` is raised by any advance that *moved* the FSM — even one
/// whose cycle returns to the stored state (arm → fire → start). The
/// write-back is then a no-op value-wise but still takes the write lock,
/// preserving §6's read-becomes-write amplification (once per
/// transaction instead of once per posting).
///
/// [`statenum_offset`]: TriggerStateRec::statenum_offset
#[derive(Debug, Clone)]
pub(crate) struct CachedTriggerState {
    /// Decoded, interned record; `statenum` is the live (in-txn) state.
    pub rec: TriggerStateRec,
    /// Resolved trigger name, shared with the interner — firings clone the
    /// `Arc`, never the characters.
    pub trigger_name: Arc<str>,
    /// The encoded record as read from (or first written to) storage.
    pub raw: Vec<u8>,
    /// Byte offset of `statenum` inside `raw`.
    pub statenum_offset: usize,
    /// The FSM moved this transaction: write the record back at commit.
    pub dirty: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(interner: &Interner) -> TriggerStateRec {
        TriggerStateRec {
            triggernum: 1,
            trigger_sym: interner.intern("AutoRaiseLimit"),
            statenum: 2,
            class_sym: interner.intern("CredCard"),
            anchor: Oid::new(3, 4),
            params: vec![0, 0, 122, 68].into(), // 1000.0f32
            anchors: vec![(String::from("stock"), Oid::new(5, 6))].into(),
        }
    }

    #[test]
    fn state_record_roundtrips() {
        let interner = Interner::default();
        let rec = sample(&interner);
        let bytes = rec.encode_to_vec_with(&interner);
        let back = TriggerStateRec::decode_with(&bytes, &interner).unwrap();
        assert_eq!(back, rec);
        // Decoding with a *fresh* interner must also work (symbols are
        // session-local, the wire format is not).
        let other = Interner::default();
        let again = TriggerStateRec::decode_with(&bytes, &other).unwrap();
        assert_eq!(again.statenum, rec.statenum);
        assert_eq!(&*other.resolve(again.class_sym), "CredCard");
    }

    #[test]
    fn statenum_offset_points_at_statenum() {
        let interner = Interner::default();
        let mut rec = sample(&interner);
        let mut bytes = rec.encode_to_vec_with(&interner);
        let offset = TriggerStateRec::statenum_offset("AutoRaiseLimit".len());
        ode_storage::codec::patch_u32_le(&mut bytes, offset, 77).unwrap();
        let back = TriggerStateRec::decode_with(&bytes, &interner).unwrap();
        rec.statenum = 77;
        assert_eq!(back, rec);
    }

    #[test]
    fn trigger_id_roundtrips_via_oid() {
        let id = TriggerId::from_oid(Oid::new(9, 9));
        assert_eq!(TriggerId::from_oid(id.oid()), id);
        assert!(id.to_string().contains("9:9"));
    }
}
