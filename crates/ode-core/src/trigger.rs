//! Persistent trigger state (§5.4.1).
//!
//! "The trigger state is stored in a persistent data structure, since it
//! must persist across transactions":
//!
//! ```text
//! persistent struct TriggerState {
//!     unsigned int triggernum;
//!     persistent void *trigobj;
//!     int statenum;
//!     persistent metatype *trigobjtype;
//! };
//! typedef persistent TriggerState *TriggerId;
//! ```
//!
//! Our record carries the same fields — `triggernum`, the anchor object
//! (`trigobj`), the FSM state (`statenum`), and the defining class
//! (`trigobjtype`, needed "because of inheritance since an object can have
//! active triggers from several base classes") — plus the activation
//! parameters (the paper subclasses `TriggerState` per trigger to hold
//! them, e.g. `CredCardAutoRaiseLimitStruct`; we store them as an encoded
//! blob) and, for the inter-object extension, the named anchor list.
//!
//! [`TriggerId`] is, as in the paper, simply the persistent pointer to the
//! state record.

use bytes::BytesMut;
use ode_storage::codec::{Blob, Decode, Encode};
use ode_storage::Oid;

/// Handle for deactivating a trigger — "trigger activation returns a
/// TriggerId which can be used to deactivate the trigger" (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TriggerId(pub(crate) Oid);

impl TriggerId {
    /// The underlying persistent state record's Oid.
    pub fn oid(&self) -> Oid {
        self.0
    }

    /// Rebuild a TriggerId from a stored Oid (e.g. kept in an application
    /// object across transactions, as `AutoRaise` is in §4.1).
    pub fn from_oid(oid: Oid) -> TriggerId {
        TriggerId(oid)
    }
}

impl std::fmt::Display for TriggerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trigger@{}", self.0)
    }
}

/// The persistent trigger state record.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TriggerStateRec {
    /// Index into the defining class's trigger table.
    pub triggernum: u32,
    /// Trigger name (redundant with `triggernum`; used to re-resolve if a
    /// class definition reorders its triggers between sessions).
    pub trigger_name: String,
    /// Current FSM state.
    pub statenum: u32,
    /// Defining class (`trigobjtype`).
    pub class_name: String,
    /// Anchor object (`trigobj`).
    pub anchor: Oid,
    /// Encoded activation parameters.
    pub params: Vec<u8>,
    /// Named anchors (inter-object triggers only; empty otherwise).
    pub anchors: Vec<(String, Oid)>,
}

impl Encode for TriggerStateRec {
    fn encode(&self, buf: &mut BytesMut) {
        self.triggernum.encode(buf);
        self.trigger_name.encode(buf);
        self.statenum.encode(buf);
        self.class_name.encode(buf);
        self.anchor.encode(buf);
        Blob(self.params.clone()).encode(buf);
        self.anchors.encode(buf);
    }
}

impl Decode for TriggerStateRec {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(TriggerStateRec {
            triggernum: u32::decode(buf)?,
            trigger_name: String::decode(buf)?,
            statenum: u32::decode(buf)?,
            class_name: String::decode(buf)?,
            anchor: Oid::decode(buf)?,
            params: Blob::decode(buf)?.0,
            anchors: Vec::<(String, Oid)>::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_storage::codec::{decode_all, encode_to_vec};

    #[test]
    fn state_record_roundtrips() {
        let rec = TriggerStateRec {
            triggernum: 1,
            trigger_name: "AutoRaiseLimit".into(),
            statenum: 2,
            class_name: "CredCard".into(),
            anchor: Oid::new(3, 4),
            params: vec![0, 0, 122, 68], // 1000.0f32
            anchors: vec![("stock".into(), Oid::new(5, 6))],
        };
        let bytes = encode_to_vec(&rec);
        let back: TriggerStateRec = decode_all(&bytes).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn trigger_id_roundtrips_via_oid() {
        let id = TriggerId::from_oid(Oid::new(9, 9));
        assert_eq!(TriggerId::from_oid(id.oid()), id);
        assert!(id.to_string().contains("9:9"));
    }
}
