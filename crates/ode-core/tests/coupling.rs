//! Coupling modes and transaction events (§4.2, §5.5).

use bytes::BytesMut;
use ode_core::{
    ClassBuilder, CouplingMode, Database, Decode, Encode, OdeObject, Perpetual, PersistentPtr,
};

/// An audit log object that trigger actions append to.
#[derive(Debug, Clone, PartialEq, Default)]
struct Audit {
    lines: Vec<String>,
}

impl Encode for Audit {
    fn encode(&self, buf: &mut BytesMut) {
        self.lines.encode(buf);
    }
}
impl Decode for Audit {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(Audit {
            lines: Vec::<String>::decode(buf)?,
        })
    }
}
impl OdeObject for Audit {
    const CLASS: &'static str = "Audit";
}

/// A simple account whose triggers log under various coupling modes.
#[derive(Debug, Clone, PartialEq)]
struct Account {
    balance: i64,
}

impl Encode for Account {
    fn encode(&self, buf: &mut BytesMut) {
        self.balance.encode(buf);
    }
}
impl Decode for Account {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(Account {
            balance: i64::decode(buf)?,
        })
    }
}
impl OdeObject for Account {
    const CLASS: &'static str = "Account";
}

fn log_action(
    tag: &'static str,
) -> impl for<'a, 'b> Fn(&'a mut ode_core::TriggerCtx<'b>) -> ode_core::Result<()> + Send + Sync + 'static
{
    move |ctx| {
        let audit: PersistentPtr<Audit> = ctx.params()?;
        ctx.db()
            .update_with(ctx.txn(), audit, |a| a.lines.push(tag.to_string()))
    }
}

fn setup(db: &Database) {
    let audit = ClassBuilder::new("Audit").build(db.registry()).unwrap();
    db.register_class(&audit).unwrap();
    let account = ClassBuilder::new("Account")
        .after_event("Deposit")
        .txn_events()
        .trigger(
            "LogNow",
            "after Deposit",
            CouplingMode::Immediate,
            Perpetual::Yes,
            log_action("immediate"),
        )
        .trigger(
            "LogAtEnd",
            "after Deposit",
            CouplingMode::End,
            Perpetual::Yes,
            log_action("end"),
        )
        .trigger(
            "LogDependent",
            "after Deposit",
            CouplingMode::Dependent,
            Perpetual::Yes,
            log_action("dependent"),
        )
        .trigger(
            "LogIndependent",
            "after Deposit",
            CouplingMode::Independent,
            Perpetual::Yes,
            log_action("independent"),
        )
        .trigger(
            "LogCommit",
            "before tcomplete",
            CouplingMode::Immediate,
            Perpetual::Yes,
            log_action("tcomplete"),
        )
        .trigger(
            "LogAbortWitness",
            "before tabort",
            CouplingMode::Independent,
            Perpetual::Yes,
            log_action("tabort-witness"),
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&account).unwrap();
}

fn new_world(db: &Database, triggers: &[&str]) -> (PersistentPtr<Account>, PersistentPtr<Audit>) {
    db.with_txn(|txn| {
        let audit = db.pnew(txn, &Audit::default())?;
        let account = db.pnew(txn, &Account { balance: 0 })?;
        for t in triggers {
            db.activate(txn, account, t, &audit)?;
        }
        Ok((account, audit))
    })
    .unwrap()
}

fn deposit(
    db: &Database,
    txn: ode_core::TxnId,
    acc: PersistentPtr<Account>,
    n: i64,
) -> ode_core::Result<()> {
    db.invoke(txn, acc, "Deposit", |a: &mut Account| {
        a.balance += n;
        Ok(())
    })
}

fn audit_lines(db: &Database, audit: PersistentPtr<Audit>) -> Vec<String> {
    db.with_txn(|txn| Ok(db.read(txn, audit)?.lines)).unwrap()
}

#[test]
fn all_four_couplings_fire_on_commit() {
    let db = Database::volatile();
    setup(&db);
    let (account, audit) = new_world(
        &db,
        &["LogNow", "LogAtEnd", "LogDependent", "LogIndependent"],
    );
    db.with_txn(|txn| deposit(&db, txn, account, 10)).unwrap();
    let mut lines = audit_lines(&db, audit);
    // Immediate ran during the deposit; end before commit; the detached
    // pair after commit (dependent first — one system txn each).
    assert_eq!(lines.remove(0), "immediate");
    assert_eq!(lines.remove(0), "end");
    lines.sort();
    assert_eq!(lines, vec!["dependent", "independent"]);
}

#[test]
fn abort_drops_all_but_independent() {
    let db = Database::volatile();
    setup(&db);
    let (account, audit) = new_world(
        &db,
        &["LogNow", "LogAtEnd", "LogDependent", "LogIndependent"],
    );
    let err = db
        .with_txn(|txn| {
            deposit(&db, txn, account, 10)?;
            Err::<(), _>(ode_core::OdeError::tabort("user abort"))
        })
        .unwrap_err();
    assert!(err.is_abort());
    // The immediate action's write was rolled back with the transaction;
    // end and dependent were discarded; only !dependent survives (§5.5:
    // "the separate transaction can commit even if the event detecting
    // transaction aborts").
    assert_eq!(audit_lines(&db, audit), vec!["independent"]);
    // The balance change itself was rolled back.
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, account)?.balance, 0);
        Ok(())
    })
    .unwrap();
}

#[test]
fn before_tcomplete_fires_during_commit() {
    let db = Database::volatile();
    setup(&db);
    let (account, audit) = new_world(&db, &["LogCommit"]);
    // The activation transaction itself accessed the account, so it was on
    // that transaction's event-object list and the trigger already fired
    // once at its commit.
    assert_eq!(audit_lines(&db, audit), vec!["tcomplete"]);
    db.with_txn(|txn| deposit(&db, txn, account, 1)).unwrap();
    assert_eq!(audit_lines(&db, audit), vec!["tcomplete"; 2]);
    // Even a pure read puts the object on the event object list.
    db.with_txn(|txn| {
        let _ = db.read(txn, account)?;
        Ok(())
    })
    .unwrap();
    assert_eq!(audit_lines(&db, audit), vec!["tcomplete"; 3]);
}

#[test]
fn before_tabort_fires_on_abort_only() {
    let db = Database::volatile();
    setup(&db);
    let (account, audit) = new_world(&db, &["LogAbortWitness"]);
    // Commit path: no tabort event.
    db.with_txn(|txn| deposit(&db, txn, account, 1)).unwrap();
    assert!(audit_lines(&db, audit).is_empty());
    // Abort path: the trigger fires; because it is !dependent its log
    // line survives the rollback.
    let _ = db
        .with_txn(|txn| {
            deposit(&db, txn, account, 1)?;
            Err::<(), _>(ode_core::OdeError::tabort("boom"))
        })
        .unwrap_err();
    assert_eq!(audit_lines(&db, audit), vec!["tabort-witness"]);
}

#[test]
fn end_actions_see_the_full_transaction() {
    // An end trigger observes the cumulative effect of the transaction,
    // not the state at detection time.
    let db = Database::volatile();
    let audit_td = ClassBuilder::new("Audit").build(db.registry()).unwrap();
    db.register_class(&audit_td).unwrap();
    let account = ClassBuilder::new("Account")
        .after_event("Deposit")
        .trigger(
            "SnapshotAtEnd",
            "after Deposit",
            CouplingMode::End,
            Perpetual::No,
            |ctx| {
                let audit: PersistentPtr<Audit> = ctx.params()?;
                let account: Account = ctx.object()?;
                ctx.db().update_with(ctx.txn(), audit, |a| {
                    a.lines.push(format!("balance={}", account.balance))
                })
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&account).unwrap();
    let (account, audit) = new_world(&db, &["SnapshotAtEnd"]);
    db.with_txn(|txn| {
        deposit(&db, txn, account, 10)?; // trigger detected here
        deposit(&db, txn, account, 20)?; // further work before commit
        deposit(&db, txn, account, 30)?;
        Ok(())
    })
    .unwrap();
    assert_eq!(audit_lines(&db, audit), vec!["balance=60"]);
}

#[test]
fn dependent_actions_run_in_system_transactions() {
    let db = Database::volatile();
    setup(&db);
    let (account, audit) = new_world(&db, &["LogDependent"]);
    db.reset_trigger_stats();
    db.with_txn(|txn| deposit(&db, txn, account, 10)).unwrap();
    assert_eq!(audit_lines(&db, audit).len(), 1);
    let stats = db.trigger_stats();
    assert_eq!(stats.deferred_firings, 1);
    assert_eq!(stats.immediate_firings, 0);
}

#[test]
fn end_trigger_tabort_aborts_the_whole_transaction() {
    // A constraint checked at end-of-transaction (deferred) that fails
    // must abort the transaction — and the !dependent witness still runs.
    let db = Database::volatile();
    let audit_td = ClassBuilder::new("Audit").build(db.registry()).unwrap();
    db.register_class(&audit_td).unwrap();
    let account = ClassBuilder::new("Account")
        .after_event("Deposit")
        .trigger(
            "NonNegativeAtEnd",
            "after Deposit",
            CouplingMode::End,
            Perpetual::Yes,
            |ctx| {
                let account: Account = ctx.object()?;
                if account.balance < 0 {
                    Err(ctx.tabort("negative balance"))
                } else {
                    Ok(())
                }
            },
        )
        .trigger(
            "Witness",
            "after Deposit",
            CouplingMode::Independent,
            Perpetual::Yes,
            log_action("witness"),
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&account).unwrap();
    let (acc, audit) = new_world(&db, &["NonNegativeAtEnd", "Witness"]);

    // Positive total: commits.
    db.with_txn(|txn| deposit(&db, txn, acc, 5)).unwrap();
    // Negative total at commit time: aborts even though each step ran.
    let err = db.with_txn(|txn| deposit(&db, txn, acc, -100)).unwrap_err();
    assert!(err.is_abort(), "{err}");
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, acc)?.balance, 5);
        Ok(())
    })
    .unwrap();
    assert_eq!(
        audit_lines(&db, audit),
        vec!["witness", "witness"],
        "!dependent witness survives both outcomes"
    );
}
