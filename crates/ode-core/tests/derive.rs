//! The `#[derive(OdeClass)]` macro: generated codec + class wiring.

use ode_core::{ClassBuilder, CouplingMode, Database, OdeClass, OdeObject, Perpetual};
use ode_storage::codec::{decode_all, encode_to_vec};

#[derive(Debug, Clone, PartialEq, OdeClass)]
struct Invoice {
    number: u64,
    customer: String,
    total_cents: i64,
    paid: bool,
    line_items: Vec<String>,
    discount: Option<f32>,
}

#[derive(Debug, Clone, PartialEq, OdeClass)]
#[ode(class = "RenamedWidget")]
struct Widget {
    id: u32,
}

fn sample() -> Invoice {
    Invoice {
        number: 42,
        customer: "Gehani".into(),
        total_cents: 99_95,
        paid: false,
        line_items: vec!["triggers".into(), "events".into()],
        discount: Some(0.1),
    }
}

#[test]
fn derived_codec_roundtrips() {
    let inv = sample();
    let bytes = encode_to_vec(&inv);
    let back: Invoice = decode_all(&bytes).unwrap();
    assert_eq!(back, inv);
}

#[test]
fn derived_layout_is_field_order() {
    // The first field is a u64: its little-endian bytes lead the payload.
    let bytes = encode_to_vec(&sample());
    assert_eq!(&bytes[0..8], &42u64.to_le_bytes());
}

#[test]
fn class_name_defaults_and_overrides() {
    assert_eq!(Invoice::CLASS, "Invoice");
    assert_eq!(Widget::CLASS, "RenamedWidget");
}

#[test]
fn derived_classes_work_end_to_end_with_triggers() {
    let db = Database::volatile();
    let td = ClassBuilder::new("Invoice")
        .after_event("Pay")
        .mask("Paid", |ctx| {
            let inv: Invoice = ctx.object()?;
            Ok(inv.paid)
        })
        .trigger(
            "GuardDoublePay",
            "(after Pay & Paid()), (after Pay & Paid())",
            CouplingMode::Immediate,
            Perpetual::Yes,
            |ctx| Err(ctx.tabort("already paid")),
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();

    let inv = db
        .with_txn(|txn| {
            let inv = db.pnew(txn, &sample())?;
            db.activate(txn, inv, "GuardDoublePay", &())?;
            Ok(inv)
        })
        .unwrap();
    let pay = || {
        db.with_txn(|txn| {
            db.invoke(txn, inv, "Pay", |i: &mut Invoice| {
                i.paid = true;
                Ok(())
            })
        })
    };
    pay().unwrap();
    let err = pay().unwrap_err();
    assert!(err.is_abort(), "double pay must abort: {err}");
    db.with_txn(|txn| {
        assert!(db.read(txn, inv)?.paid);
        Ok(())
    })
    .unwrap();
}

#[test]
fn derived_structs_nest() {
    #[derive(Debug, Clone, PartialEq, OdeClass)]
    struct Outer {
        tag: String,
        inner: Widget,
        more: Vec<Widget>,
    }
    let outer = Outer {
        tag: "nested".into(),
        inner: Widget { id: 1 },
        more: vec![Widget { id: 2 }, Widget { id: 3 }],
    };
    let back: Outer = decode_all(&encode_to_vec(&outer)).unwrap();
    assert_eq!(back, outer);
}
