//! Regression coverage for the `Database::tick` hot path: tick cost must
//! scale with the objects *interested* in the timer, not with everything
//! armed in the trigger index.

use bytes::BytesMut;
use ode_core::{ClassBuilder, CouplingMode, Database, Decode, Encode, OdeObject, Perpetual};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

#[derive(Debug, Clone, PartialEq)]
struct Cell {
    value: f64,
}

impl Encode for Cell {
    fn encode(&self, buf: &mut BytesMut) {
        self.value.encode(buf);
    }
}

impl Decode for Cell {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(Cell {
            value: f64::decode(buf)?,
        })
    }
}

impl OdeObject for Cell {
    const CLASS: &'static str = "Cell";
}

#[derive(Debug, Clone, PartialEq)]
struct Brick {
    value: f64,
}

impl Encode for Brick {
    fn encode(&self, buf: &mut BytesMut) {
        self.value.encode(buf);
    }
}

impl Decode for Brick {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(Brick {
            value: f64::decode(buf)?,
        })
    }
}

impl OdeObject for Brick {
    const CLASS: &'static str = "Brick";
}

/// `Cell` declares `timer daily`; `Brick` has triggers but no timer
/// events at all.
fn setup(db: &Database, fired: &Arc<AtomicU32>) {
    let fired2 = Arc::clone(fired);
    let cell = ClassBuilder::new("Cell")
        .timer_event("daily")
        .trigger(
            "OnDaily",
            "timer daily",
            CouplingMode::Immediate,
            Perpetual::Yes,
            move |_| {
                fired2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&cell).unwrap();
    let brick = ClassBuilder::new("Brick")
        .user_event("Poke")
        .trigger(
            "OnPoke",
            "Poke",
            CouplingMode::Immediate,
            Perpetual::Yes,
            |_| Ok(()),
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&brick).unwrap();
}

#[test]
fn tick_posts_to_timer_classes_and_counts_skips_for_the_rest() {
    let db = Database::volatile();
    let fired = Arc::new(AtomicU32::new(0));
    setup(&db, &fired);

    const CELLS: usize = 3;
    const BRICKS: usize = 7;
    db.with_txn(|txn| {
        for _ in 0..CELLS {
            let p = db.pnew(txn, &Cell { value: 0.0 })?;
            db.activate(txn, p, "OnDaily", &())?;
        }
        for _ in 0..BRICKS {
            let p = db.pnew(txn, &Brick { value: 0.0 })?;
            db.activate(txn, p, "OnPoke", &())?;
        }
        Ok(())
    })
    .unwrap();

    let before = db.stats();
    db.with_txn(|txn| {
        let posted = db.tick(txn, "daily")?;
        assert_eq!(posted, CELLS, "tick reaches exactly the timer class");
        Ok(())
    })
    .unwrap();
    let after = db.stats();

    assert_eq!(fired.load(Ordering::SeqCst), CELLS as u32);
    // Every armed non-timer object is skipped (and counted), not posted.
    assert_eq!(
        after.tick_skips - before.tick_skips,
        BRICKS as u64,
        "armed objects of timer-less classes are skipped"
    );
    assert_eq!(
        after.events_posted - before.events_posted,
        CELLS as u64,
        "tick posts only to interested objects"
    );
    // No FSM is touched for the skipped class: advances happen only for
    // the Cell activations.
    assert_eq!(after.fsm_advances - before.fsm_advances, CELLS as u64);
}

#[test]
fn unknown_timer_posts_nothing_and_skips_everything_armed() {
    let db = Database::volatile();
    let fired = Arc::new(AtomicU32::new(0));
    setup(&db, &fired);
    db.with_txn(|txn| {
        let c = db.pnew(txn, &Cell { value: 0.0 })?;
        db.activate(txn, c, "OnDaily", &())?;
        let b = db.pnew(txn, &Brick { value: 0.0 })?;
        db.activate(txn, b, "OnPoke", &())?;
        Ok(())
    })
    .unwrap();
    let before = db.stats();
    db.with_txn(|txn| {
        assert_eq!(db.tick(txn, "weekly")?, 0);
        Ok(())
    })
    .unwrap();
    let after = db.stats();
    assert_eq!(fired.load(Ordering::SeqCst), 0);
    assert_eq!(after.events_posted, before.events_posted);
    assert_eq!(after.tick_skips - before.tick_skips, 2);
}
