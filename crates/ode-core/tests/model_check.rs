//! Model-checking the trigger run-time: for random (mask-free) trigger
//! expressions and random transaction scripts — including aborted
//! transactions — the number of firings observed through the full database
//! stack must equal what the bare FSM predicts when run over only the
//! *committed* events. This exercises the §5.5 guarantee that rolled-back
//! transactions roll back "their associated events" too.

use bytes::BytesMut;
use ode_core::{ClassBuilder, CouplingMode, Database, Decode, Encode, OdeObject, Perpetual};
use ode_events::ast::{Alphabet, EventExpr, TriggerEvent};
use ode_events::dfa::Dfa;
use ode_events::event::EventId;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[derive(Debug, Clone)]
struct Subject;
impl Encode for Subject {
    fn encode(&self, _: &mut BytesMut) {}
}
impl Decode for Subject {
    fn decode(_: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(Subject)
    }
}
impl OdeObject for Subject {
    const CLASS: &'static str = "Subject";
}

const EVENT_NAMES: [&str; 3] = ["E0", "E1", "E2"];

/// Random mask-free expressions over the three user events.
fn expr() -> impl Strategy<Value = EventExpr> {
    let leaf = prop_oneof![
        (0..3u32).prop_map(|e| EventExpr::Basic(EventId(e))),
        Just(EventExpr::Any),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| EventExpr::seq(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| EventExpr::or(a, b)),
            inner.clone().prop_map(EventExpr::star),
            (inner.clone(), inner).prop_map(|(a, b)| EventExpr::relative(a, b)),
        ]
    })
}

/// Transaction scripts: (commit?, events to post).
fn scripts() -> impl Strategy<Value = Vec<(bool, Vec<u8>)>> {
    prop::collection::vec((any::<bool>(), prop::collection::vec(0..3u8, 0..6)), 0..8)
}

/// Reference alphabet with ids 0..3 in declaration order — matching the
/// ids the database registry assigns when `Subject` is the first class
/// registered and the events are declared in the same order.
fn reference_alphabet() -> Alphabet {
    let mut al = Alphabet::new();
    for (i, name) in EVENT_NAMES.iter().enumerate() {
        al.add_event(EventId(i as u32), name);
    }
    al
}

fn run_case(
    expr: EventExpr,
    scripts: Vec<(bool, Vec<u8>)>,
    perpetual: Perpetual,
) -> (usize, usize) {
    let al = reference_alphabet();
    let te = TriggerEvent {
        anchored: false,
        expr,
    };
    let source = te.display(&al);

    // --- the real system ---
    let db = Database::volatile();
    let fired = Arc::new(AtomicUsize::new(0));
    let f = Arc::clone(&fired);
    let td = ClassBuilder::new("Subject")
        .user_event("E0")
        .user_event("E1")
        .user_event("E2")
        .trigger(
            "T",
            &source,
            CouplingMode::Immediate,
            perpetual,
            move |_| {
                f.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
    let subject = db
        .with_txn(|txn| {
            let s = db.pnew(txn, &Subject)?;
            db.activate(txn, s, "T", &())?;
            Ok(s)
        })
        .unwrap();
    let fired_at_activation = fired.load(Ordering::SeqCst);

    for (commit, events) in &scripts {
        let result = db.with_txn(|txn| {
            for &e in events {
                db.post_user_event(txn, subject, EVENT_NAMES[e as usize])?;
            }
            if *commit {
                Ok(())
            } else {
                Err(ode_core::OdeError::tabort("roll back this segment"))
            }
        });
        assert_eq!(result.is_ok(), *commit);
        if !commit {
            // Events of the aborted segment fired immediately (and were
            // conceptually rolled back); subtract them from the observed
            // count by re-reading the model below instead. To keep the
            // comparison exact we count only committed-segment firings:
            // see the model note.
        }
    }
    let observed = fired.load(Ordering::SeqCst);

    // --- the model: the bare FSM over activation + committed events only,
    // plus the firings that happened inside aborted segments (immediate
    // actions run before the rollback — §5.5: "the actions themselves are
    // rolled back", but our counter is outside the database).
    let dfa = Dfa::compile(&te, &al);
    let once_only = perpetual == Perpetual::No;
    let activation = dfa.activate(|_| false);
    let mut model_fired = if activation.accepted { 1 } else { 0 };
    let mut alive = !(once_only && activation.accepted)
        && activation.status != ode_events::machine::Advance::Dead;
    let mut committed_state = activation.state;
    if model_fired != fired_at_activation {
        // Activation difference would invalidate the rest.
        return (observed, usize::MAX);
    }
    for (commit, events) in &scripts {
        if !alive {
            break;
        }
        // Run the segment from the committed state.
        let mut seg_state = committed_state;
        for &e in events {
            let out = dfa.post(seg_state, EventId(e as u32), |_| false);
            seg_state = out.state;
            if out.accepted {
                model_fired += 1;
                if once_only {
                    alive = false;
                    break;
                }
            }
            if out.status == ode_events::machine::Advance::Dead {
                alive = false;
                break;
            }
        }
        if *commit {
            committed_state = seg_state;
        } else if once_only && !alive {
            // A once-only trigger that fired inside an aborted segment is
            // re-armed by the rollback (its deactivation is rolled back
            // too), so the model must resurrect it.
            alive = true;
        }
    }
    (observed, model_fired)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn perpetual_triggers_match_the_fsm_model(e in expr(), s in scripts()) {
        let (observed, model) = run_case(e, s, Perpetual::Yes);
        prop_assume!(model != usize::MAX);
        prop_assert_eq!(observed, model);
    }

    #[test]
    fn once_only_triggers_match_the_fsm_model(e in expr(), s in scripts()) {
        let (observed, model) = run_case(e, s, Perpetual::No);
        prop_assume!(model != usize::MAX);
        prop_assert_eq!(observed, model);
    }
}
