//! Phoenix transactions (§6): durable after-commit work that survives
//! crashes and retries until done.

use bytes::BytesMut;
use ode_core::{
    ClassBuilder, CouplingMode, Database, Decode, Encode, OdeObject, Perpetual, PersistentPtr,
    StorageOptions,
};
use ode_testutil::TempDir;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

#[derive(Debug, Clone, Default)]
struct Outbox {
    sent: Vec<String>,
}
impl Encode for Outbox {
    fn encode(&self, buf: &mut BytesMut) {
        self.sent.encode(buf);
    }
}
impl Decode for Outbox {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(Outbox {
            sent: Vec::<String>::decode(buf)?,
        })
    }
}
impl OdeObject for Outbox {
    const CLASS: &'static str = "Outbox";
}

fn outbox_class(db: &Database) {
    let td = ClassBuilder::new("Outbox").build(db.registry()).unwrap();
    db.register_class(&td).unwrap();
}

fn send_mail_handler(db: &Database, outbox: PersistentPtr<Outbox>) {
    db.register_phoenix_handler("send_mail", move |db, txn, payload| {
        let message: String = ode_storage::codec::decode_all(payload)?;
        db.update_with(txn, outbox, |o| o.sent.push(message))
    });
}

#[test]
fn enqueue_is_transactional() {
    let db = Database::volatile();
    outbox_class(&db);
    let outbox = db.with_txn(|txn| db.pnew(txn, &Outbox::default())).unwrap();
    send_mail_handler(&db, outbox);

    // Aborted enqueue vanishes.
    let _ = db
        .with_txn(|txn| {
            db.enqueue_phoenix(txn, "send_mail", &"never".to_string())?;
            Err::<(), _>(ode_core::OdeError::tabort("rollback"))
        })
        .unwrap_err();
    db.with_txn(|txn| {
        assert_eq!(db.pending_phoenix(txn)?, 0);
        Ok(())
    })
    .unwrap();

    // Committed enqueue runs.
    db.with_txn(|txn| {
        db.enqueue_phoenix(txn, "send_mail", &"hello".to_string())?;
        Ok(())
    })
    .unwrap();
    let report = db.run_phoenix().unwrap();
    assert_eq!(report.executed, 1);
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, outbox)?.sent, vec!["hello"]);
        assert_eq!(db.pending_phoenix(txn)?, 0);
        Ok(())
    })
    .unwrap();
}

#[test]
fn phoenix_survives_crash_and_runs_after_reopen() {
    let dir = TempDir::new("phoenix");
    let outbox_oid;
    {
        let db = Database::create(dir.path(), StorageOptions::default()).unwrap();
        outbox_class(&db);
        let outbox = db.with_txn(|txn| db.pnew(txn, &Outbox::default())).unwrap();
        outbox_oid = outbox.oid();
        db.with_txn(|txn| {
            db.enqueue_phoenix(txn, "send_mail", &"survives".to_string())?;
            Ok(())
        })
        .unwrap();
        // Crash before anyone ran the queue.
        std::mem::forget(db);
    }
    {
        let db = Database::open(dir.path(), StorageOptions::default()).unwrap();
        outbox_class(&db);
        let outbox = PersistentPtr::<Outbox>::from_oid(outbox_oid);
        send_mail_handler(&db, outbox);
        let report = db.run_phoenix().unwrap();
        assert_eq!(report.executed, 1);
        db.with_txn(|txn| {
            assert_eq!(db.read(txn, outbox)?.sent, vec!["survives"]);
            Ok(())
        })
        .unwrap();
        // Idempotent: a second sweep finds nothing.
        assert_eq!(db.run_phoenix().unwrap().executed, 0);
    }
}

#[test]
fn failing_handlers_retry_until_success() {
    let db = Database::volatile();
    outbox_class(&db);
    let outbox = db.with_txn(|txn| db.pnew(txn, &Outbox::default())).unwrap();
    let failures_left = Arc::new(AtomicU32::new(2));
    let fl = Arc::clone(&failures_left);
    db.register_phoenix_handler("flaky", move |db, txn, payload| {
        if fl.load(Ordering::SeqCst) > 0 {
            fl.fetch_sub(1, Ordering::SeqCst);
            return Err(ode_core::OdeError::Action("transient".into()));
        }
        let message: String = ode_storage::codec::decode_all(payload)?;
        db.update_with(txn, outbox, |o| o.sent.push(message))
    });

    let item = db
        .with_txn(|txn| db.enqueue_phoenix(txn, "flaky", &"eventually".to_string()))
        .unwrap();

    assert_eq!(db.run_phoenix().unwrap().failed, 1);
    db.with_txn(|txn| {
        assert_eq!(db.phoenix_attempts(txn, item)?, 1);
        Ok(())
    })
    .unwrap();
    assert_eq!(db.run_phoenix().unwrap().failed, 1);
    let report = db.run_phoenix().unwrap();
    assert_eq!((report.executed, report.failed), (1, 0));
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, outbox)?.sent, vec!["eventually"]);
        Ok(())
    })
    .unwrap();
}

#[test]
fn unresolved_handlers_stay_queued() {
    let db = Database::volatile();
    db.with_txn(|txn| {
        db.enqueue_phoenix(txn, "not_registered", &1u32)?;
        Ok(())
    })
    .unwrap();
    let report = db.run_phoenix().unwrap();
    assert_eq!(report.unresolved, 1);
    db.with_txn(|txn| {
        assert_eq!(db.pending_phoenix(txn)?, 1);
        Ok(())
    })
    .unwrap();
}

#[test]
fn after_commit_trigger_pattern() {
    // The recommended way to get the `after tcommit` the paper dropped: a
    // dependent trigger that enqueues a phoenix item. The item becomes
    // durable with the detecting transaction's commit and is executed
    // reliably afterwards.
    let db = Database::volatile();
    outbox_class(&db);
    let td = ClassBuilder::new("Doc")
        .after_event("Publish")
        .trigger(
            "NotifyAfterCommit",
            "after Publish",
            CouplingMode::End, // durable iff the transaction commits
            Perpetual::Yes,
            |ctx| {
                ctx.db()
                    .enqueue_phoenix(ctx.txn(), "send_mail", &"published!".to_string())?;
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();

    #[derive(Debug)]
    struct Doc;
    impl Encode for Doc {
        fn encode(&self, _: &mut BytesMut) {}
    }
    impl Decode for Doc {
        fn decode(_: &mut &[u8]) -> ode_storage::Result<Self> {
            Ok(Doc)
        }
    }
    impl OdeObject for Doc {
        const CLASS: &'static str = "Doc";
    }

    let outbox = db.with_txn(|txn| db.pnew(txn, &Outbox::default())).unwrap();
    send_mail_handler(&db, outbox);

    let doc = db
        .with_txn(|txn| {
            let doc = db.pnew(txn, &Doc)?;
            db.activate(txn, doc, "NotifyAfterCommit", &())?;
            Ok(doc)
        })
        .unwrap();

    // Aborted publish: no phoenix item.
    let _ = db
        .with_txn(|txn| {
            db.invoke(txn, doc, "Publish", |_: &mut Doc| Ok(()))?;
            Err::<(), _>(ode_core::OdeError::tabort("no"))
        })
        .unwrap_err();
    assert_eq!(db.run_phoenix().unwrap().executed, 0);

    // Committed publish: exactly one notification, after commit.
    db.with_txn(|txn| db.invoke(txn, doc, "Publish", |_: &mut Doc| Ok(())))
        .unwrap();
    assert_eq!(db.run_phoenix().unwrap().executed, 1);
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, outbox)?.sent, vec!["published!"]);
        Ok(())
    })
    .unwrap();
}
