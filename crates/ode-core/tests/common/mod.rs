//! Shared test fixture: the paper's §4 `CredCard` class, translated.

use bytes::BytesMut;
use ode_core::{
    ClassBuilder, CouplingMode, Database, Decode, Encode, OdeObject, Perpetual, PersistentPtr,
    TypeDescriptor,
};
use std::sync::Arc;

/// The paper's CredCard (§4): credit limit, balance, black marks.
#[derive(Debug, Clone, PartialEq)]
pub struct CredCard {
    pub cred_lim: f32,
    pub curr_bal: f32,
    pub good_hist: bool,
    pub black_marks: Vec<String>,
}

impl CredCard {
    pub fn new(cred_lim: f32) -> CredCard {
        CredCard {
            cred_lim,
            curr_bal: 0.0,
            good_hist: true,
            black_marks: Vec::new(),
        }
    }

    /// The paper's MoreCred(): balance above 80% of the limit and a good
    /// credit history.
    pub fn more_cred(&self) -> bool {
        self.curr_bal > 0.8 * self.cred_lim && self.good_hist
    }
}

impl Encode for CredCard {
    fn encode(&self, buf: &mut BytesMut) {
        self.cred_lim.encode(buf);
        self.curr_bal.encode(buf);
        self.good_hist.encode(buf);
        self.black_marks.encode(buf);
    }
}

impl Decode for CredCard {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(CredCard {
            cred_lim: f32::decode(buf)?,
            curr_bal: f32::decode(buf)?,
            good_hist: bool::decode(buf)?,
            black_marks: Vec::<String>::decode(buf)?,
        })
    }
}

impl OdeObject for CredCard {
    const CLASS: &'static str = "CredCard";
}

/// Build the CredCard descriptor with the paper's two triggers.
pub fn cred_card_class(db: &Database) -> Arc<TypeDescriptor> {
    let td = ClassBuilder::new("CredCard")
        .user_event("BigBuy")
        .after_event("PayBill")
        .after_event("Buy")
        .mask("OverLimit", |ctx| {
            let card: CredCard = ctx.object()?;
            Ok(card.curr_bal > card.cred_lim)
        })
        .mask("MoreCred", |ctx| {
            let card: CredCard = ctx.object()?;
            Ok(card.more_cred())
        })
        // trigger DenyCredit() : perpetual after Buy & (currBal > credLim)
        //   ==> { BlackMark("Over Limit", today()); tabort; }
        .trigger(
            "DenyCredit",
            "after Buy & OverLimit()",
            CouplingMode::Immediate,
            Perpetual::Yes,
            |ctx| {
                ctx.update_object(|card: &mut CredCard| {
                    card.black_marks.push("Over Limit".to_string());
                })?;
                Err(ctx.tabort("Over Limit"))
            },
        )
        // trigger AutoRaiseLimit(float amount) :
        //   relative((after Buy & MoreCred()), after PayBill)
        //   ==> RaiseLimit(amount);
        .trigger(
            "AutoRaiseLimit",
            "relative((after Buy & MoreCred()), after PayBill)",
            CouplingMode::Immediate,
            Perpetual::No,
            |ctx| {
                let amount: f32 = ctx.params()?;
                ctx.update_object(|card: &mut CredCard| {
                    card.cred_lim += amount;
                })
            },
        )
        .build(db.registry())
        .expect("CredCard class builds");
    db.register_class(&td).expect("CredCard registers");
    td
}

/// `Buy` through a persistent pointer (posts `after Buy`).
pub fn buy(
    db: &Database,
    txn: ode_core::TxnId,
    card: PersistentPtr<CredCard>,
    amount: f32,
) -> ode_core::Result<()> {
    db.invoke(txn, card, "Buy", |c: &mut CredCard| {
        c.curr_bal += amount;
        Ok(())
    })
}

/// `PayBill` through a persistent pointer (posts `after PayBill`).
pub fn pay_bill(
    db: &Database,
    txn: ode_core::TxnId,
    card: PersistentPtr<CredCard>,
    amount: f32,
) -> ode_core::Result<()> {
    db.invoke(txn, card, "PayBill", |c: &mut CredCard| {
        c.curr_bal -= amount;
        Ok(())
    })
}
