//! Persistence of trigger state: global composite events (§7 — "Ode
//! supports global composite events … Ode stores TriggerStates in the
//! database"), recovery, and the disk/MM engine pair.

mod common;

use common::{buy, cred_card_class, pay_bill, CredCard};
use ode_core::{Database, EngineKind, StorageOptions};
use ode_testutil::TempDir;

fn options(engine: EngineKind) -> StorageOptions {
    StorageOptions {
        engine,
        ..StorageOptions::default()
    }
}

/// The E10 experiment: a composite event whose constituent basic events
/// span *separate application sessions* — impossible with transient
/// trigger state (Sentinel), natural with persistent TriggerStates.
fn global_composite_event_on(engine: EngineKind) {
    let dir = TempDir::new("global");
    let card_oid;
    {
        // Application 1: create the card, activate AutoRaiseLimit, and
        // make the qualifying purchase.
        let db = Database::create(dir.path(), options(engine)).unwrap();
        cred_card_class(&db);
        let card = db
            .with_txn(|txn| {
                let card = db.pnew(txn, &CredCard::new(1000.0))?;
                db.activate(txn, card, "AutoRaiseLimit", &1000.0f32)?;
                Ok(card)
            })
            .unwrap();
        db.with_txn(|txn| buy(&db, txn, card, 900.0)).unwrap();
        card_oid = card.oid();
        db.close().unwrap();
    }
    {
        // Application 2 (separate session): the PayBill completes the
        // composite event armed by application 1.
        let db = Database::open(dir.path(), options(engine)).unwrap();
        cred_card_class(&db);
        let card = ode_core::PersistentPtr::<CredCard>::from_oid(card_oid);
        db.with_txn(|txn| pay_bill(&db, txn, card, 100.0)).unwrap();
        db.with_txn(|txn| {
            let c = db.read(txn, card)?;
            assert_eq!(c.cred_lim, 2000.0, "composite event spanned sessions");
            Ok(())
        })
        .unwrap();
        db.close().unwrap();
    }
}

#[test]
fn global_composite_events_disk() {
    global_composite_event_on(EngineKind::Disk);
}

#[test]
fn global_composite_events_memory() {
    global_composite_event_on(EngineKind::Memory);
}

#[test]
fn trigger_state_survives_crash_recovery() {
    let dir = TempDir::new("crash");
    let card_oid;
    {
        let db = Database::create(dir.path(), options(EngineKind::Disk)).unwrap();
        cred_card_class(&db);
        let card = db
            .with_txn(|txn| {
                let card = db.pnew(txn, &CredCard::new(1000.0))?;
                db.activate(txn, card, "AutoRaiseLimit", &1000.0f32)?;
                Ok(card)
            })
            .unwrap();
        db.with_txn(|txn| buy(&db, txn, card, 900.0)).unwrap();
        card_oid = card.oid();
        // Crash: no checkpoint, no clean close.
        std::mem::forget(db);
    }
    {
        let db = Database::open(dir.path(), options(EngineKind::Disk)).unwrap();
        cred_card_class(&db);
        let card = ode_core::PersistentPtr::<CredCard>::from_oid(card_oid);
        db.with_txn(|txn| pay_bill(&db, txn, card, 100.0)).unwrap();
        db.with_txn(|txn| {
            assert_eq!(db.read(txn, card)?.cred_lim, 2000.0);
            Ok(())
        })
        .unwrap();
    }
}

#[test]
fn aborted_arming_is_rolled_back() {
    // "Since actions of aborted transactions are rolled back, so are
    // their associated events. Event roll-back is handled using standard
    // transaction roll-back of the triggers' states" (§5.5).
    let db = Database::volatile();
    cred_card_class(&db);
    let card = db
        .with_txn(|txn| {
            let card = db.pnew(txn, &CredCard::new(1000.0))?;
            db.activate(txn, card, "AutoRaiseLimit", &1000.0f32)?;
            Ok(card)
        })
        .unwrap();

    // Arm the trigger inside a transaction that then aborts.
    let _ = db
        .with_txn(|txn| {
            buy(&db, txn, card, 900.0)?;
            Err::<(), _>(ode_core::OdeError::tabort("changed my mind"))
        })
        .unwrap_err();

    // The FSM state was rolled back to "unarmed": PayBill alone must not
    // fire the trigger.
    db.with_txn(|txn| pay_bill(&db, txn, card, 10.0)).unwrap();
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, card)?.cred_lim, 1000.0);
        Ok(())
    })
    .unwrap();

    // And the machinery still works after the rollback.
    db.with_txn(|txn| buy(&db, txn, card, 900.0)).unwrap();
    db.with_txn(|txn| pay_bill(&db, txn, card, 10.0)).unwrap();
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, card)?.cred_lim, 2000.0);
        Ok(())
    })
    .unwrap();
}

#[test]
fn aborted_activation_is_rolled_back() {
    let db = Database::volatile();
    cred_card_class(&db);
    let card = db
        .with_txn(|txn| db.pnew(txn, &CredCard::new(100.0)))
        .unwrap();
    let _ = db
        .with_txn(|txn| {
            db.activate(txn, card, "DenyCredit", &())?;
            Err::<(), _>(ode_core::OdeError::tabort("no thanks"))
        })
        .unwrap_err();
    // The activation never happened: over-limit purchases sail through.
    db.with_txn(|txn| buy(&db, txn, card, 9999.0)).unwrap();
    db.with_txn(|txn| {
        assert!(db.active_triggers(txn, card.oid())?.is_empty());
        Ok(())
    })
    .unwrap();
}

#[test]
fn deactivation_rolls_back_with_abort() {
    let db = Database::volatile();
    cred_card_class(&db);
    let (card, deny) = db
        .with_txn(|txn| {
            let card = db.pnew(txn, &CredCard::new(1000.0))?;
            let id = db.activate(txn, card, "DenyCredit", &())?;
            Ok((card, id))
        })
        .unwrap();
    // Deactivate, then abort: the deactivation is undone.
    let _ = db
        .with_txn(|txn| {
            db.deactivate(txn, deny)?;
            Err::<(), _>(ode_core::OdeError::tabort("revert"))
        })
        .unwrap_err();
    let err = db.with_txn(|txn| buy(&db, txn, card, 5000.0)).unwrap_err();
    assert!(err.is_abort(), "DenyCredit still active after rollback");
}

#[test]
fn pdelete_removes_object_and_its_triggers() {
    let db = Database::volatile();
    cred_card_class(&db);
    let card = db
        .with_txn(|txn| {
            let card = db.pnew(txn, &CredCard::new(1000.0))?;
            db.activate(txn, card, "DenyCredit", &())?;
            db.activate(txn, card, "AutoRaiseLimit", &1.0f32)?;
            Ok(card)
        })
        .unwrap();
    db.with_txn(|txn| {
        assert_eq!(db.active_triggers(txn, card.oid())?.len(), 2);
        db.pdelete(txn, card)?;
        assert!(db.active_triggers(txn, card.oid())?.is_empty());
        Ok(())
    })
    .unwrap();
    db.with_txn(|txn| {
        assert!(db.read(txn, card).is_err());
        Ok(())
    })
    .unwrap();
}

#[test]
fn many_cards_many_triggers_scale() {
    // A smoke-scale test: hundreds of objects with active triggers, the
    // index resizing underneath.
    let db = Database::volatile();
    cred_card_class(&db);
    let cards = db
        .with_txn(|txn| {
            let mut cards = Vec::new();
            for _ in 0..200 {
                let card = db.pnew(txn, &CredCard::new(1000.0))?;
                db.activate(txn, card, "AutoRaiseLimit", &100.0f32)?;
                cards.push(card);
            }
            Ok(cards)
        })
        .unwrap();
    db.with_txn(|txn| {
        for &card in &cards {
            buy(&db, txn, card, 900.0)?;
            pay_bill(&db, txn, card, 10.0)?;
        }
        Ok(())
    })
    .unwrap();
    db.with_txn(|txn| {
        for &card in &cards {
            assert_eq!(db.read(txn, card)?.cred_lim, 1100.0);
            assert!(db.active_triggers(txn, card.oid())?.is_empty());
        }
        Ok(())
    })
    .unwrap();
}
