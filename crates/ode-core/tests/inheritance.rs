//! Inheritance: derived classes, base-class triggers on derived objects,
//! and the event-numbering discipline of §5.2/§6.

use bytes::BytesMut;
use ode_core::{
    ClassBuilder, CouplingMode, Database, Decode, Encode, OdeObject, Perpetual, PersistentPtr,
};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Base: Person { name }.
#[derive(Debug, Clone, PartialEq)]
struct Person {
    name: String,
}
impl Encode for Person {
    fn encode(&self, buf: &mut BytesMut) {
        self.name.encode(buf);
    }
}
impl Decode for Person {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(Person {
            name: String::decode(buf)?,
        })
    }
}
impl OdeObject for Person {
    const CLASS: &'static str = "Person";
}

/// Derived: Customer { name, visits } — layout extends Person's, like a
/// C++ derived object.
#[derive(Debug, Clone, PartialEq)]
struct Customer {
    name: String,
    visits: u32,
}
impl Encode for Customer {
    fn encode(&self, buf: &mut BytesMut) {
        self.name.encode(buf);
        self.visits.encode(buf);
    }
}
impl Decode for Customer {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(Customer {
            name: String::decode(buf)?,
            visits: u32::decode(buf)?,
        })
    }
}
impl OdeObject for Customer {
    const CLASS: &'static str = "Customer";
}

fn setup(db: &Database, fired: &Arc<AtomicU32>) {
    let fired_base = Arc::clone(fired);
    let person = ClassBuilder::new("Person")
        .after_event("Rename")
        .trigger(
            "OnRename",
            "after Rename",
            CouplingMode::Immediate,
            Perpetual::Yes,
            move |_| {
                fired_base.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&person).unwrap();
    let customer = ClassBuilder::new("Customer")
        .base(&person)
        .after_event("Visit")
        .build(db.registry())
        .unwrap();
    db.register_class(&customer).unwrap();
}

#[test]
fn base_trigger_fires_on_derived_object() {
    let db = Database::volatile();
    let fired = Arc::new(AtomicU32::new(0));
    setup(&db, &fired);

    let cust = db
        .with_txn(|txn| {
            let cust = db.pnew(
                txn,
                &Customer {
                    name: "Robert".into(),
                    visits: 0,
                },
            )?;
            // Activate the *base class* trigger on the derived object.
            db.activate(txn, cust.cast::<Person>(), "OnRename", &())?;
            Ok(cust)
        })
        .unwrap();

    // Invoking the inherited member on the derived object posts the
    // base-declared event (same globally unique integer) and the base
    // trigger fires.
    db.with_txn(|txn| {
        db.invoke(txn, cust, "Rename", |c: &mut Customer| {
            c.name = "Narain".into();
            Ok(())
        })
    })
    .unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 1);

    // A derived-only event is invisible to the base trigger ("a base
    // class trigger should not see the events of a derived class",
    // §5.4.3).
    db.with_txn(|txn| {
        db.invoke(txn, cust, "Visit", |c: &mut Customer| {
            c.visits += 1;
            Ok(())
        })
    })
    .unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 1);
}

#[test]
fn derived_object_readable_as_base() {
    let db = Database::volatile();
    let fired = Arc::new(AtomicU32::new(0));
    setup(&db, &fired);
    let cust = db
        .with_txn(|txn| {
            db.pnew(
                txn,
                &Customer {
                    name: "Daniel".into(),
                    visits: 3,
                },
            )
        })
        .unwrap();
    // Read through a base-typed pointer: prefix decode (C++-style layout).
    db.with_txn(|txn| {
        let p: Person = db.read(txn, cust.cast::<Person>())?;
        assert_eq!(p.name, "Daniel");
        Ok(())
    })
    .unwrap();
}

#[test]
fn base_trigger_rejected_on_unrelated_object() {
    let db = Database::volatile();
    let fired = Arc::new(AtomicU32::new(0));
    setup(&db, &fired);
    let other = ClassBuilder::new("Unrelated").build(db.registry()).unwrap();
    db.register_class(&other).unwrap();

    #[derive(Debug)]
    struct Unrelated;
    impl Encode for Unrelated {
        fn encode(&self, _: &mut BytesMut) {}
    }
    impl Decode for Unrelated {
        fn decode(_: &mut &[u8]) -> ode_storage::Result<Self> {
            Ok(Unrelated)
        }
    }
    impl OdeObject for Unrelated {
        const CLASS: &'static str = "Unrelated";
    }

    db.with_txn(|txn| {
        let u = db.pnew(txn, &Unrelated)?;
        let as_person: PersistentPtr<Person> = u.cast();
        let err = db.activate(txn, as_person, "OnRename", &()).unwrap_err();
        assert!(matches!(err, ode_core::OdeError::TypeMismatch { .. }));
        Ok(())
    })
    .unwrap();
}

#[test]
fn same_method_name_in_two_classes_stays_distinct() {
    // Two unrelated classes both declare `after Ping`; their globally
    // unique integers differ, so a trigger on one never reacts to the
    // other (§5.2).
    let db = Database::volatile();
    let hits = Arc::new(AtomicU32::new(0));
    let hits2 = Arc::clone(&hits);
    let a = ClassBuilder::new("Person")
        .after_event("Rename")
        .trigger(
            "OnRename",
            "after Rename",
            CouplingMode::Immediate,
            Perpetual::Yes,
            move |_| {
                hits2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&a).unwrap();

    #[derive(Debug)]
    struct Widget;
    impl Encode for Widget {
        fn encode(&self, _: &mut BytesMut) {}
    }
    impl Decode for Widget {
        fn decode(_: &mut &[u8]) -> ode_storage::Result<Self> {
            Ok(Widget)
        }
    }
    impl OdeObject for Widget {
        const CLASS: &'static str = "Widget";
    }
    let b = ClassBuilder::new("Widget")
        .after_event("Rename")
        .build(db.registry())
        .unwrap();
    db.register_class(&b).unwrap();

    db.with_txn(|txn| {
        let p = db.pnew(txn, &Person { name: "x".into() })?;
        db.activate(txn, p, "OnRename", &())?;
        let w = db.pnew(txn, &Widget)?;
        // Rename the widget: Person's trigger must not fire.
        db.invoke(txn, w, "Rename", |_w: &mut Widget| Ok(()))?;
        Ok(())
    })
    .unwrap();
    assert_eq!(hits.load(Ordering::SeqCst), 0);
}
