//! §8 event attributes: "allowing each member function event to look at
//! the parameters passed to the corresponding member function, at least
//! in masks."

use bytes::BytesMut;
use ode_core::{ClassBuilder, CouplingMode, Database, Decode, Encode, OdeObject, Perpetual};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

#[derive(Debug, Clone)]
struct Till {
    total: i64,
}
impl Encode for Till {
    fn encode(&self, buf: &mut BytesMut) {
        self.total.encode(buf);
    }
}
impl Decode for Till {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(Till {
            total: i64::decode(buf)?,
        })
    }
}
impl OdeObject for Till {
    const CLASS: &'static str = "Till";
}

#[test]
fn masks_see_member_function_arguments() {
    // The paper's BigBuy scenario done properly: a trigger on large
    // purchases where "large" is judged from the Buy's own argument, not
    // from object state.
    let db = Database::volatile();
    let fired = Arc::new(AtomicU32::new(0));
    let f = Arc::clone(&fired);
    let seen = Arc::new(parking_lot::Mutex::new(Vec::<i64>::new()));
    let seen2 = Arc::clone(&seen);
    let td = ClassBuilder::new("Till")
        .after_event("Buy")
        .mask("IsBig", |ctx| {
            // The amount passed to Buy, available in the mask.
            match ctx.event_args::<i64>()? {
                Some(amount) => Ok(amount > 100),
                None => Ok(false), // posted without args
            }
        })
        .trigger(
            "OnBigBuy",
            "after Buy & IsBig()",
            CouplingMode::Immediate,
            Perpetual::Yes,
            move |ctx| {
                // Actions of triggers fired by this posting also see them.
                if let Some(amount) = ctx.event_args::<i64>()? {
                    seen2.lock().push(amount);
                }
                f.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();

    let till = db
        .with_txn(|txn| {
            let till = db.pnew(txn, &Till { total: 0 })?;
            db.activate(txn, till, "OnBigBuy", &())?;
            Ok(till)
        })
        .unwrap();

    let buy = |amount: i64| {
        db.with_txn(|txn| {
            db.invoke_with_args(txn, till, "Buy", &amount, |t: &mut Till| {
                t.total += amount;
                Ok(())
            })
        })
        .unwrap();
    };

    buy(50); // small: mask false
    buy(500); // big: fires
    buy(99); // small
    buy(101); // big: fires
    assert_eq!(fired.load(Ordering::SeqCst), 2);
    assert_eq!(*seen.lock(), vec![500, 101]);

    // Plain invoke posts the event without args; the mask sees None.
    db.with_txn(|txn| {
        db.invoke(txn, till, "Buy", |t: &mut Till| {
            t.total += 9999;
            Ok(())
        })
    })
    .unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 2);
}

#[test]
fn deferred_firings_keep_the_detection_time_args() {
    let db = Database::volatile();
    let seen = Arc::new(parking_lot::Mutex::new(Vec::<i64>::new()));
    let seen2 = Arc::clone(&seen);
    let td = ClassBuilder::new("Till")
        .after_event("Buy")
        .trigger(
            "AuditBuy",
            "after Buy",
            CouplingMode::Independent,
            Perpetual::Yes,
            move |ctx| {
                if let Some(amount) = ctx.event_args::<i64>()? {
                    seen2.lock().push(amount);
                }
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
    let till = db
        .with_txn(|txn| {
            let till = db.pnew(txn, &Till { total: 0 })?;
            db.activate(txn, till, "AuditBuy", &())?;
            Ok(till)
        })
        .unwrap();
    db.with_txn(|txn| {
        db.invoke_with_args(txn, till, "Buy", &42i64, |t: &mut Till| {
            t.total += 42;
            Ok(())
        })?;
        db.invoke_with_args(txn, till, "Buy", &7i64, |t: &mut Till| {
            t.total += 7;
            Ok(())
        })
    })
    .unwrap();
    // The !dependent actions ran after commit, in a system transaction,
    // still carrying the per-event arguments from detection time.
    assert_eq!(*seen.lock(), vec![42, 7]);
}
