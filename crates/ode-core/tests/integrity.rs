//! Torture the activation/deactivation/deletion machinery and verify the
//! §5 invariants afterwards with `verify_integrity`.

mod common;

use common::{buy, cred_card_class, pay_bill, CredCard};
use ode_core::{Database, TriggerId};

#[test]
fn healthy_after_activation_churn() {
    let db = Database::volatile();
    cred_card_class(&db);

    let cards = db
        .with_txn(|txn| {
            let mut cards = Vec::new();
            for _ in 0..20 {
                cards.push(db.pnew(txn, &CredCard::new(1000.0))?);
            }
            Ok(cards)
        })
        .unwrap();

    // Deterministic churn: activate, fire, deactivate, delete.
    let mut ids: Vec<(usize, TriggerId)> = Vec::new();
    db.with_txn(|txn| {
        for (i, &card) in cards.iter().enumerate() {
            let deny = db.activate(txn, card, "DenyCredit", &())?;
            let auto = db.activate(txn, card, "AutoRaiseLimit", &(i as f32))?;
            ids.push((i, deny));
            ids.push((i, auto));
        }
        Ok(())
    })
    .unwrap();

    // Fire AutoRaiseLimit (once-only) on every third card.
    db.with_txn(|txn| {
        for &card in cards.iter().step_by(3) {
            buy(&db, txn, card, 900.0)?;
            pay_bill(&db, txn, card, 100.0)?;
        }
        Ok(())
    })
    .unwrap();

    // Explicitly deactivate DenyCredit on every fourth card (some of the
    // ids were already consumed by once-only firings — deactivate must
    // tolerate that).
    db.with_txn(|txn| {
        for (i, id) in &ids {
            if i % 4 == 0 {
                db.deactivate(txn, *id)?;
            }
        }
        Ok(())
    })
    .unwrap();

    // Delete every fifth card entirely.
    db.with_txn(|txn| {
        for &card in cards.iter().step_by(5) {
            db.pdelete(txn, card)?;
        }
        Ok(())
    })
    .unwrap();

    db.with_txn(|txn| {
        let report = db.verify_integrity(txn)?;
        assert!(report.is_healthy(), "issues: {:#?}", report.issues);
        assert!(report.states_checked > 0, "something must remain active");
        Ok(())
    })
    .unwrap();
}

#[test]
fn healthy_after_aborted_churn() {
    let db = Database::volatile();
    cred_card_class(&db);
    let card = db
        .with_txn(|txn| {
            let card = db.pnew(txn, &CredCard::new(1000.0))?;
            db.activate(txn, card, "AutoRaiseLimit", &10.0f32)?;
            Ok(card)
        })
        .unwrap();

    // A transaction that activates, fires, deactivates — then aborts.
    let _ = db
        .with_txn(|txn| {
            let extra = db.activate(txn, card, "AutoRaiseLimit", &20.0f32)?;
            buy(&db, txn, card, 900.0)?;
            pay_bill(&db, txn, card, 1.0)?;
            db.deactivate(txn, extra)?;
            Err::<(), _>(ode_core::OdeError::tabort("churn rollback"))
        })
        .unwrap_err();

    db.with_txn(|txn| {
        let report = db.verify_integrity(txn)?;
        assert!(report.is_healthy(), "issues: {:#?}", report.issues);
        // The original activation survived the rollback.
        assert_eq!(db.active_triggers(txn, card.oid())?.len(), 1);
        Ok(())
    })
    .unwrap();
}

#[test]
fn detects_planted_corruption() {
    // Sanity-check the checker itself: plant an inconsistency and make
    // sure it is reported.
    let db = Database::volatile();
    cred_card_class(&db);
    let (card, id) = db
        .with_txn(|txn| {
            let card = db.pnew(txn, &CredCard::new(1000.0))?;
            let id = db.activate(txn, card, "DenyCredit", &())?;
            Ok((card, id))
        })
        .unwrap();
    let _ = card;
    // Free the state record behind the index's back.
    db.with_txn(|txn| {
        db.storage().free(txn, id.oid())?;
        Ok(())
    })
    .unwrap();
    db.with_txn(|txn| {
        let report = db.verify_integrity(txn)?;
        assert!(!report.is_healthy());
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, ode_core::IntegrityIssue::DanglingIndexEntry { .. })));
        Ok(())
    })
    .unwrap();
}
