//! The paper's §4 credit-card scenario, end to end.

mod common;

use common::{buy, cred_card_class, pay_bill, CredCard};
use ode_core::Database;

#[test]
fn deny_credit_blocks_over_limit_purchases() {
    let db = Database::volatile();
    cred_card_class(&db);

    // Set up the card in one committed transaction.
    let card = db
        .with_txn(|txn| {
            let card = db.pnew(txn, &CredCard::new(1000.0))?;
            db.activate(txn, card, "DenyCredit", &())?;
            Ok(card)
        })
        .unwrap();

    // A purchase within the limit goes through.
    db.with_txn(|txn| buy(&db, txn, card, 400.0)).unwrap();
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, card)?.curr_bal, 400.0);
        Ok(())
    })
    .unwrap();

    // A purchase that would exceed the limit fires DenyCredit: the whole
    // transaction aborts, so the purchase never happens.
    let err = db.with_txn(|txn| buy(&db, txn, card, 700.0)).unwrap_err();
    assert!(err.is_abort(), "DenyCredit must tabort: {err}");

    db.with_txn(|txn| {
        let c = db.read(txn, card)?;
        assert_eq!(c.curr_bal, 400.0, "aborted purchase rolled back");
        // The black mark was written inside the aborted transaction, so it
        // is rolled back too — §5.5: "actions of aborted transactions are
        // rolled back". (The paper's application would use a !dependent
        // trigger to make the mark stick; see coupling tests.)
        assert!(c.black_marks.is_empty());
        Ok(())
    })
    .unwrap();

    // DenyCredit is perpetual: it fires again on the next violation.
    let err = db.with_txn(|txn| buy(&db, txn, card, 2000.0)).unwrap_err();
    assert!(err.is_abort());
}

#[test]
fn auto_raise_limit_full_walkthrough() {
    let db = Database::volatile();
    cred_card_class(&db);

    let card = db
        .with_txn(|txn| {
            let card = db.pnew(txn, &CredCard::new(1000.0))?;
            // credcard->AutoRaiseLimit(1000.0);
            db.activate(txn, card, "AutoRaiseLimit", &1000.0f32)?;
            Ok(card)
        })
        .unwrap();

    // Buy 900: MoreCred() is true (900 > 0.8*1000), trigger armed.
    db.with_txn(|txn| buy(&db, txn, card, 900.0)).unwrap();
    // PayBill 100: the relative event completes, limit raised by 1000.
    db.with_txn(|txn| pay_bill(&db, txn, card, 100.0)).unwrap();
    db.with_txn(|txn| {
        let c = db.read(txn, card)?;
        assert_eq!(c.cred_lim, 2000.0, "AutoRaiseLimit fired once");
        assert_eq!(c.curr_bal, 800.0);
        Ok(())
    })
    .unwrap();

    // The trigger was once-only: another qualifying pattern does nothing.
    db.with_txn(|txn| buy(&db, txn, card, 1100.0)).unwrap(); // 1900 > 0.8*2000
    db.with_txn(|txn| pay_bill(&db, txn, card, 100.0)).unwrap();
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, card)?.cred_lim, 2000.0);
        Ok(())
    })
    .unwrap();
}

#[test]
fn auto_raise_limit_mask_false_resets() {
    let db = Database::volatile();
    cred_card_class(&db);
    let card = db
        .with_txn(|txn| {
            let card = db.pnew(txn, &CredCard::new(1000.0))?;
            db.activate(txn, card, "AutoRaiseLimit", &500.0f32)?;
            Ok(card)
        })
        .unwrap();

    // Small buy: MoreCred() false, machine returns to start (Figure 1's
    // False edge). PayBill alone must not fire.
    db.with_txn(|txn| buy(&db, txn, card, 100.0)).unwrap();
    db.with_txn(|txn| pay_bill(&db, txn, card, 50.0)).unwrap();
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, card)?.cred_lim, 1000.0);
        Ok(())
    })
    .unwrap();

    // Now a qualifying Buy arms it; any later PayBill fires (relative
    // allows intervening events).
    db.with_txn(|txn| buy(&db, txn, card, 900.0)).unwrap();
    db.with_txn(|txn| buy(&db, txn, card, 10.0)).unwrap(); // still armed
    db.with_txn(|txn| pay_bill(&db, txn, card, 5.0)).unwrap();
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, card)?.cred_lim, 1500.0);
        Ok(())
    })
    .unwrap();
}

#[test]
fn trigger_state_spans_transactions_and_deactivation_works() {
    let db = Database::volatile();
    cred_card_class(&db);
    let (card, auto_raise) = db
        .with_txn(|txn| {
            let card = db.pnew(txn, &CredCard::new(1000.0))?;
            let id = db.activate(txn, card, "AutoRaiseLimit", &1000.0f32)?;
            Ok((card, id))
        })
        .unwrap();

    // Arm it in one transaction…
    db.with_txn(|txn| buy(&db, txn, card, 900.0)).unwrap();
    // …then deactivate before the completing event: nothing fires.
    db.with_txn(|txn| {
        assert!(db.deactivate(txn, auto_raise)?);
        Ok(())
    })
    .unwrap();
    db.with_txn(|txn| pay_bill(&db, txn, card, 100.0)).unwrap();
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, card)?.cred_lim, 1000.0);
        // Deactivating again reports false.
        assert!(!db.deactivate(txn, auto_raise)?);
        Ok(())
    })
    .unwrap();
}

#[test]
fn unactivated_triggers_never_fire() {
    // "Unless an explicit activation is performed, the trigger will never
    // fire for credcard" (§4.1).
    let db = Database::volatile();
    cred_card_class(&db);
    let card = db
        .with_txn(|txn| db.pnew(txn, &CredCard::new(100.0)))
        .unwrap();
    // Way over limit, but DenyCredit was never activated.
    db.with_txn(|txn| buy(&db, txn, card, 5000.0)).unwrap();
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, card)?.curr_bal, 5000.0);
        Ok(())
    })
    .unwrap();
}

#[test]
fn activation_is_per_object() {
    let db = Database::volatile();
    cred_card_class(&db);
    let (a, b) = db
        .with_txn(|txn| {
            let a = db.pnew(txn, &CredCard::new(1000.0))?;
            let b = db.pnew(txn, &CredCard::new(1000.0))?;
            db.activate(txn, a, "DenyCredit", &())?;
            Ok((a, b))
        })
        .unwrap();
    // Card a is protected…
    assert!(db.with_txn(|txn| buy(&db, txn, a, 2000.0)).is_err());
    // …card b is not.
    db.with_txn(|txn| buy(&db, txn, b, 2000.0)).unwrap();
}

#[test]
fn both_triggers_coexist() {
    let db = Database::volatile();
    cred_card_class(&db);
    let card = db
        .with_txn(|txn| {
            let card = db.pnew(txn, &CredCard::new(1000.0))?;
            db.activate(txn, card, "DenyCredit", &())?;
            db.activate(txn, card, "AutoRaiseLimit", &1000.0f32)?;
            Ok(card)
        })
        .unwrap();
    // 900 is within the limit (no DenyCredit) and arms AutoRaiseLimit.
    db.with_txn(|txn| buy(&db, txn, card, 900.0)).unwrap();
    db.with_txn(|txn| pay_bill(&db, txn, card, 100.0)).unwrap();
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, card)?.cred_lim, 2000.0);
        Ok(())
    })
    .unwrap();
    // DenyCredit still guards the (new) limit.
    let err = db.with_txn(|txn| buy(&db, txn, card, 1500.0)).unwrap_err();
    assert!(err.is_abort());
}

#[test]
fn stats_reflect_processing() {
    let db = Database::volatile();
    cred_card_class(&db);
    let card = db
        .with_txn(|txn| {
            let card = db.pnew(txn, &CredCard::new(1000.0))?;
            db.activate(txn, card, "AutoRaiseLimit", &1.0f32)?;
            Ok(card)
        })
        .unwrap();
    db.reset_trigger_stats();
    db.with_txn(|txn| buy(&db, txn, card, 900.0)).unwrap();
    let stats = db.trigger_stats();
    assert_eq!(stats.events_posted, 1, "after Buy");
    assert_eq!(stats.fsm_advances, 1);
    assert_eq!(stats.mask_evaluations, 1, "MoreCred evaluated once");
    assert_eq!(stats.immediate_firings, 0);
}
