//! Crash-fault-injected recovery (§5.5 durability, §7 persistent
//! trigger state).
//!
//! The tentpole harness runs a trigger-heavy `CredCard` workload against
//! a disk database whose WAL and data files are wrapped in a
//! [`FaultInjector`], kills the "device" at a randomized byte offset (a
//! torn write, after which all I/O fails), reopens the directory with a
//! fresh un-injected engine, and asserts the recovered database equals
//! the state after the last *acknowledged* commit — object payloads,
//! persistent trigger-FSM statenums, and the object→trigger hash index
//! (via `verify_integrity`) all included.
//!
//! The workload is laced with MVCC snapshot readers (a long-lived
//! rotated reader pinning the GC horizon plus a per-step consistency
//! probe) and mid-script checkpoints — both quiesced and fuzzy — so
//! crash points also land with a populated version store, mid-GC,
//! mid-fuzzy-checkpoint, and mid-log-truncation; recovery is then
//! verified through both the locking and the snapshot read paths.
//!
//! Environment knobs (used by the CI crash matrix):
//!
//! * `ODE_CRASH_SEED`  — u64 seed for the crash-point PRNG (default 0).
//! * `ODE_CRASH_FSYNC` — `1` to fsync commits (CI); default off so the
//!   developer loop stays fast. Recovery correctness is identical either
//!   way because the harness crashes the *process model*, not the OS
//!   page cache.

mod common;

use common::{buy, cred_card_class, pay_bill, CredCard};
use ode_core::{Database, EngineKind, PersistentPtr, StorageOptions, TriggerId, TxnId};
use ode_storage::FaultInjector;
use ode_testutil::TempDir;
use std::sync::Arc;

const CARDS: usize = 3;
const STEPS: usize = 20;
const CRASH_POINTS: usize = 64;

/// Deterministic 64-bit LCG (Knuth's MMIX constants) so the harness
/// needs no external rand crate and every failure reproduces from
/// `ODE_CRASH_SEED` alone.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x1234_5678))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // The low bits of an LCG are weak; mix the high half down.
        self.0 >> 17
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn crash_seed() -> u64 {
    std::env::var("ODE_CRASH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn crash_fsync() -> bool {
    std::env::var("ODE_CRASH_FSYNC")
        .map(|s| s == "1")
        .unwrap_or(false)
}

fn disk_options(fsync: bool, fault: Option<Arc<FaultInjector>>) -> StorageOptions {
    StorageOptions {
        engine: EngineKind::Disk,
        fsync,
        fault,
        ..StorageOptions::default()
    }
}

/// Everything recovery must reproduce: each card's payload plus its
/// trigger's stored statenum (`None` once the non-perpetual
/// `AutoRaiseLimit` has fired and deactivated itself).
type Snapshot = Vec<(CredCard, Option<u32>)>;

fn take_snapshot(
    db: &Database,
    cards: &[PersistentPtr<CredCard>],
    trigs: &[TriggerId],
) -> Snapshot {
    db.with_txn(|txn| snapshot_in(db, txn, cards, trigs))
        .unwrap()
}

/// The per-card state as seen from an already-open transaction — used
/// both by the locking [`take_snapshot`] and by the MVCC read-only
/// transactions the harness races against the crash.
fn snapshot_in(
    db: &Database,
    txn: TxnId,
    cards: &[PersistentPtr<CredCard>],
    trigs: &[TriggerId],
) -> ode_core::Result<Snapshot> {
    cards
        .iter()
        .zip(trigs)
        .map(|(&card, &trig)| {
            let payload = db.read(txn, card)?;
            let statenum = db.trigger_statenum(txn, trig).ok();
            Ok((payload, statenum))
        })
        .collect()
}

/// [`take_snapshot`] through a lock-free MVCC snapshot transaction.
fn take_snapshot_ro(
    db: &Database,
    cards: &[PersistentPtr<CredCard>],
    trigs: &[TriggerId],
) -> Snapshot {
    db.with_read_txn(|txn| snapshot_in(db, txn, cards, trigs))
        .unwrap()
}

/// Create the database, register the §4 class, mint `CARDS` cards and
/// activate `AutoRaiseLimit` on each — all *before* the fault is armed,
/// mirroring an installation that was healthy until the crash window.
fn setup(
    dir: &TempDir,
    fsync: bool,
    fault: Option<Arc<FaultInjector>>,
) -> (Database, Vec<PersistentPtr<CredCard>>, Vec<TriggerId>) {
    let db = Database::create(dir.path(), disk_options(fsync, fault)).unwrap();
    cred_card_class(&db);
    let (cards, trigs) = db
        .with_txn(|txn| {
            let mut cards = Vec::new();
            let mut trigs = Vec::new();
            for i in 0..CARDS {
                let card = db.pnew(txn, &CredCard::new(1000.0 + 100.0 * i as f32))?;
                trigs.push(db.activate(txn, card, "AutoRaiseLimit", &250.0f32)?);
                cards.push(card);
            }
            Ok((cards, trigs))
        })
        .unwrap();
    (db, cards, trigs)
}

/// One workload transaction, chosen by the (deterministic) step PRNG.
/// Arms `MoreCred` with big buys, fires `AutoRaiseLimit` with pay-bills,
/// and sprinkles in `tabort`ed transactions so Abort records land in the
/// log between the commits recovery must replay.
fn apply_step(
    db: &Database,
    rng: &mut Lcg,
    cards: &[PersistentPtr<CredCard>],
) -> ode_core::Result<()> {
    let card = cards[rng.below(cards.len() as u64) as usize];
    match rng.below(8) {
        0 => db.with_txn(|txn| buy(db, txn, card, 850.0)),
        1 => db.with_txn(|txn| buy(db, txn, card, 120.0)),
        2 | 3 => db.with_txn(|txn| pay_bill(db, txn, card, 400.0)),
        4 => db.with_txn(|txn| {
            buy(db, txn, card, 60.0)?;
            Err(ode_core::OdeError::tabort("crash-harness abort"))
        }),
        // A quiesced checkpoint mid-script: it vacuums the MVCC version
        // store and rewrites the page image, so crash points can land
        // mid-GC / mid-checkpoint, not just between commits. (While a
        // snapshot reader is open it refuses with `NotQuiesced` — treat
        // that like the historical no-op.)
        5 => match db.storage().checkpoint() {
            Ok(()) | Err(ode_storage::StorageError::NotQuiesced(_)) => Ok(()),
            Err(e) => Err(e.into()),
        },
        // A fuzzy checkpoint mid-script: flushes sampled dirty pages,
        // logs Begin/EndCheckpoint, and truncates the WAL prefix — so
        // crash points also land mid-fuzzy-checkpoint and mid-truncation,
        // and recovery must start from the checkpoint record.
        _ => db
            .storage()
            .checkpoint_fuzzy()
            .map(|_| ())
            .map_err(Into::into),
    }
}

/// Run the scripted workload with no fault armed and report how many WAL
/// bytes it appends past the setup prefix — the byte window inside which
/// the 64 crash points are then scattered.
fn rehearse(seed: u64, fsync: bool) -> u64 {
    let dir = TempDir::new("crash-rehearse");
    let (db, cards, _trigs) = setup(&dir, fsync, None);
    let after_setup = db.storage().wal_flushed_lsn().unwrap();
    let mut rng = Lcg::new(seed);
    for _ in 0..STEPS {
        let _ = apply_step(&db, &mut rng, &cards);
    }
    let after_workload = db.storage().wal_flushed_lsn().unwrap();
    db.close().unwrap();
    after_workload - after_setup
}

/// One crash point: run the workload with the device set to die after
/// `budget` more bytes, crash, recover, and check the committed prefix.
fn run_crash_point(seed: u64, point: usize, budget: u64, fsync: bool) {
    let dir = TempDir::new("crash-point");
    let injector = Arc::new(FaultInjector::new());
    let (db, cards, trigs) = setup(&dir, fsync, Some(Arc::clone(&injector)));

    // State after the last acknowledged commit; starts at the setup state.
    let mut committed = take_snapshot(&db, &cards, &trigs);

    injector.arm_write_cap(budget);
    let mut rng = Lcg::new(seed);
    // A long-lived MVCC reader rotated through the script: open for the
    // first half of each 6-step window, closed for the second (so the
    // checkpoint steps in the closed half can actually quiesce and run
    // the version-store GC). While open it pins the GC horizon, so the
    // crash can land with a populated version store mid-trim.
    let mut reader: Option<(TxnId, Snapshot)> = None;
    for step in 0..STEPS {
        if step % 6 == 0 {
            if let Ok(txn) = db.begin_read_only() {
                reader = Some((txn, committed.clone()));
            }
        }
        if step % 6 == 3 {
            if let Some((txn, expect)) = reader.take() {
                match snapshot_in(&db, txn, &cards, &trigs) {
                    Ok(observed) => assert_eq!(
                        observed, expect,
                        "crash point {point}: a snapshot transaction drifted \
                         off the committed prefix it began at"
                    ),
                    // Reads fault the buffer pool, so the dying device can
                    // kill the probe itself — that *is* the crash.
                    Err(e) => assert!(
                        injector.tripped(),
                        "crash point {point}: long reader failed un-faulted: {e}"
                    ),
                }
                let _ = db.commit(txn);
            }
        }
        let result = apply_step(&db, &mut rng, &cards);
        if injector.tripped() {
            // The device died somewhere inside this step: whatever the
            // step's outcome, its transaction was never acknowledged as
            // durable, so the committed prefix is unchanged.
            break;
        }
        if result.is_ok() {
            committed = take_snapshot(&db, &cards, &trigs);
        }
        // A fresh lock-free snapshot always agrees with the locking view
        // of the committed prefix, even with the long reader pinning
        // older versions. Its read-barrier commit may flush the WAL tail
        // and hit the byte cap — the device dying inside the probe is a
        // crash like any other.
        match db.with_read_txn(|txn| snapshot_in(&db, txn, &cards, &trigs)) {
            Ok(ro) => assert_eq!(
                ro, committed,
                "crash point {point}: snapshot read diverged from the committed prefix"
            ),
            Err(e) => {
                assert!(
                    injector.tripped(),
                    "crash point {point}: snapshot probe failed un-faulted: {e}"
                );
                break;
            }
        }
    }

    // Crash: the process holding the poisoned engine vanishes without
    // checkpoint or clean close (dropping would try to flush) — possibly
    // with the rotated reader's snapshot still registered.
    std::mem::forget(db);
    injector.disarm();

    // Recover on pristine hardware.
    let db = Database::open(dir.path(), disk_options(fsync, None)).unwrap();
    cred_card_class(&db);
    let recovered = take_snapshot(&db, &cards, &trigs);
    assert_eq!(
        recovered, committed,
        "crash point {point} (seed {seed}, budget {budget} bytes): \
         recovered state is not the acknowledged-commit prefix"
    );
    // The freshly recovered engine serves the same prefix through the
    // MVCC read path (its version store restarts empty, so this
    // exercises the page-fallback protocol over recovered pages).
    assert_eq!(
        take_snapshot_ro(&db, &cards, &trigs),
        committed,
        "crash point {point} (seed {seed}, budget {budget} bytes): \
         post-recovery snapshot read diverged"
    );
    // The object→trigger hash index, TriggerState records, and header
    // flags must agree after replay, not just the payloads.
    db.with_txn(|txn| {
        let report = db.verify_integrity(txn)?;
        assert!(
            report.is_healthy(),
            "crash point {point} (seed {seed}, budget {budget} bytes): {:?}",
            report.issues
        );
        Ok(())
    })
    .unwrap();
    db.close().unwrap();
}

/// The tentpole acceptance test: ≥64 randomized crash points over a
/// trigger-heavy workload, every one recovering to a consistent
/// committed prefix.
#[test]
fn randomized_crash_points_recover_to_a_committed_prefix() {
    let seed = crash_seed();
    let fsync = crash_fsync();
    // Crash points are byte offsets into the workload's WAL window, plus
    // a little slack so some runs survive the whole script un-faulted.
    let span = rehearse(seed, fsync);
    assert!(span > 0, "workload must append WAL bytes");
    let mut rng = Lcg::new(seed ^ 0xC0FF_EE00);
    for point in 0..CRASH_POINTS {
        let budget = rng.below(span + 64);
        run_crash_point(seed, point, budget, fsync);
    }
}

/// A `dependent`-coupled firing runs in its own system transaction
/// *between* the parent's Commit record and the parent's durability
/// wait, so one group-commit flush covers both — with fsync on, the
/// whole cascade costs a single fsync and a single flush batch holding
/// both Commit records.
#[test]
fn dependent_firing_rides_the_parent_commit_flush() {
    use bytes::BytesMut;
    use ode_core::{ClassBuilder, CouplingMode, Decode, Encode, OdeObject, Perpetual};

    #[derive(Debug, Clone, PartialEq, Default)]
    struct Audit {
        lines: Vec<String>,
    }
    impl Encode for Audit {
        fn encode(&self, buf: &mut BytesMut) {
            self.lines.encode(buf);
        }
    }
    impl Decode for Audit {
        fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
            Ok(Audit {
                lines: Vec::<String>::decode(buf)?,
            })
        }
    }
    impl OdeObject for Audit {
        const CLASS: &'static str = "Audit";
    }

    let dir = TempDir::new("crash-ride");
    let db = Database::create(dir.path(), disk_options(true, None)).unwrap();
    let audit_td = ClassBuilder::new("Audit").build(db.registry()).unwrap();
    db.register_class(&audit_td).unwrap();
    let card_td = ClassBuilder::new("CredCard")
        .after_event("Buy")
        .trigger(
            "LogDependent",
            "after Buy",
            CouplingMode::Dependent,
            Perpetual::Yes,
            |ctx| {
                let audit: PersistentPtr<Audit> = ctx.params()?;
                ctx.db()
                    .update_with(ctx.txn(), audit, |a| a.lines.push("fired".into()))
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&card_td).unwrap();

    let (card, audit) = db
        .with_txn(|txn| {
            let audit = db.pnew(txn, &Audit::default())?;
            let card = db.pnew(txn, &CredCard::new(1000.0))?;
            db.activate(txn, card, "LogDependent", &audit)?;
            Ok((card, audit))
        })
        .unwrap();

    let before = db.stats();
    db.with_txn(|txn| buy(&db, txn, card, 100.0)).unwrap();
    let after = db.stats();

    assert_eq!(
        after.wal_fsyncs - before.wal_fsyncs,
        1,
        "parent commit and dependent system transaction share one fsync"
    );
    assert_eq!(after.wal_group_commits - before.wal_group_commits, 1);
    assert_eq!(
        after.wal_group_size_sum - before.wal_group_size_sum,
        2,
        "one flush batch carries both Commit records"
    );
    // And the firing really committed.
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, audit)?.lines, vec!["fired".to_string()]);
        Ok(())
    })
    .unwrap();
    db.close().unwrap();
}

/// Satellite: persistent trigger-FSM durability around a crash. Arming
/// `AutoRaiseLimit` (Figure 1) advances its stored statenum; if the
/// arming transaction never committed the advance must roll back, and if
/// it did commit the armed state must survive the crash *and still be
/// live* (a later PayBill fires the action).
#[test]
fn armed_trigger_statenum_rolls_back_uncommitted_and_survives_committed() {
    let dir = TempDir::new("crash-statenum");
    let injector = Arc::new(FaultInjector::new());
    let (db, cards, trigs) = {
        let db =
            Database::create(dir.path(), disk_options(true, Some(Arc::clone(&injector)))).unwrap();
        cred_card_class(&db);
        let (card, trig) = db
            .with_txn(|txn| {
                let card = db.pnew(txn, &CredCard::new(1000.0))?;
                let trig = db.activate(txn, card, "AutoRaiseLimit", &500.0f32)?;
                Ok((card, trig))
            })
            .unwrap();
        (db, vec![card], vec![trig])
    };
    let (card, trig) = (cards[0], trigs[0]);
    let unarmed = db.with_txn(|txn| db.trigger_statenum(txn, trig)).unwrap();

    // Crash *before* the arming Buy commits: the device dies at the first
    // flushed byte, so the commit is never acknowledged.
    injector.arm_write_cap(0);
    assert!(db.with_txn(|txn| buy(&db, txn, card, 900.0)).is_err());
    std::mem::forget(db);
    injector.disarm();

    let db = Database::open(dir.path(), disk_options(true, Some(Arc::clone(&injector)))).unwrap();
    cred_card_class(&db);
    db.with_txn(|txn| {
        assert_eq!(
            db.trigger_statenum(txn, trig)?,
            unarmed,
            "uncommitted statenum advance must roll back at recovery"
        );
        assert_eq!(db.read(txn, card)?.curr_bal, 0.0);
        Ok(())
    })
    .unwrap();

    // Commit the arming Buy for real, then crash.
    db.with_txn(|txn| buy(&db, txn, card, 900.0)).unwrap();
    let armed = db.with_txn(|txn| db.trigger_statenum(txn, trig)).unwrap();
    assert_ne!(armed, unarmed, "the committed Buy must advance the FSM");
    std::mem::forget(db);

    let db = Database::open(dir.path(), disk_options(true, None)).unwrap();
    cred_card_class(&db);
    db.with_txn(|txn| {
        assert_eq!(
            db.trigger_statenum(txn, trig)?,
            armed,
            "committed statenum advance must survive the crash"
        );
        Ok(())
    })
    .unwrap();
    // The recovered armed state is live, not just bytes: PayBill
    // completes the relative event and the trigger raises the limit.
    db.with_txn(|txn| pay_bill(&db, txn, card, 100.0)).unwrap();
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, card)?.cred_lim, 1500.0);
        Ok(())
    })
    .unwrap();
    db.close().unwrap();
}
