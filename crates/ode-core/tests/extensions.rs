//! The §8 future-work extensions: local rules, timed triggers, and
//! inter-object triggers.

use bytes::BytesMut;
use ode_core::{
    ClassBuilder, CouplingMode, Database, Decode, Encode, InterClassBuilder, OdeObject, Perpetual,
};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

#[derive(Debug, Clone, PartialEq)]
struct Stock {
    symbol: String,
    price: f32,
    prev: f32,
}
impl Encode for Stock {
    fn encode(&self, buf: &mut BytesMut) {
        self.symbol.encode(buf);
        self.price.encode(buf);
        self.prev.encode(buf);
    }
}
impl Decode for Stock {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(Stock {
            symbol: String::decode(buf)?,
            price: f32::decode(buf)?,
            prev: f32::decode(buf)?,
        })
    }
}
impl OdeObject for Stock {
    const CLASS: &'static str = "Stock";
}

fn stock_class(db: &Database, fired: &Arc<AtomicU32>) -> Arc<ode_core::TypeDescriptor> {
    let fired = Arc::clone(fired);
    let td = ClassBuilder::new("Stock")
        .after_event("SetPrice")
        .timer_event("daily")
        .mask("Dropped", |ctx| {
            let s: Stock = ctx.object()?;
            Ok(s.price < s.prev)
        })
        .trigger(
            "AlertOnDrop",
            "after SetPrice & Dropped()",
            CouplingMode::Immediate,
            Perpetual::Yes,
            move |_| {
                fired.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
    td
}

fn set_price(db: &Database, txn: ode_core::TxnId, s: ode_core::PersistentPtr<Stock>, p: f32) {
    db.invoke(txn, s, "SetPrice", |stock: &mut Stock| {
        stock.prev = stock.price;
        stock.price = p;
        Ok(())
    })
    .unwrap();
}

// ---------------------------------------------------------------------
// Local rules
// ---------------------------------------------------------------------

#[test]
fn local_rules_fire_and_die_with_the_transaction() {
    let db = Database::volatile();
    let fired = Arc::new(AtomicU32::new(0));
    stock_class(&db, &fired);
    let stock = db
        .with_txn(|txn| {
            db.pnew(
                txn,
                &Stock {
                    symbol: "T".into(),
                    price: 60.0,
                    prev: 60.0,
                },
            )
        })
        .unwrap();

    // Transaction 1: local rule active, fires on the drop.
    db.with_txn(|txn| {
        db.activate_local(txn, stock, "AlertOnDrop", &())?;
        assert_eq!(db.local_trigger_count(txn), 1);
        set_price(&db, txn, stock, 55.0);
        Ok(())
    })
    .unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 1);

    // Transaction 2: the local rule is gone; no firing.
    db.with_txn(|txn| {
        set_price(&db, txn, stock, 50.0);
        Ok(())
    })
    .unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 1);
}

#[test]
fn local_rules_take_no_persistent_storage_and_no_write_locks() {
    // §8: "No persistent storage is required for such triggers … such
    // triggers never require obtaining write locks for the purpose of
    // processing trigger events."
    let db = Database::volatile();
    let fired = Arc::new(AtomicU32::new(0));
    stock_class(&db, &fired);
    let stock = db
        .with_txn(|txn| {
            db.pnew(
                txn,
                &Stock {
                    symbol: "T".into(),
                    price: 60.0,
                    prev: 60.0,
                },
            )
        })
        .unwrap();

    db.with_txn(|txn| {
        db.activate_local(txn, stock, "AlertOnDrop", &())?;
        // No persistent trigger state was created.
        assert!(db.active_triggers(txn, stock.oid())?.is_empty());
        db.storage().reset_lock_stats();
        // Posting a *read-only* event-bearing invocation: the only write
        // lock would come from persistent trigger-state updates — local
        // rules must not cause any.
        db.invoke(txn, stock, "SetPrice", |_s: &mut Stock| Ok(()))?;
        let upgrades = db.storage().lock_stats().upgrades;
        assert_eq!(upgrades, 0, "local rule advance must not take write locks");
        Ok(())
    })
    .unwrap();
}

#[test]
fn local_rules_reject_detached_coupling() {
    let db = Database::volatile();
    let td = ClassBuilder::new("Stock")
        .after_event("SetPrice")
        .trigger(
            "Detached",
            "after SetPrice",
            CouplingMode::Independent,
            Perpetual::Yes,
            |_| Ok(()),
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
    db.with_txn(|txn| {
        let s = db.pnew(
            txn,
            &Stock {
                symbol: "T".into(),
                price: 1.0,
                prev: 1.0,
            },
        )?;
        let err = db.activate_local(txn, s, "Detached", &()).unwrap_err();
        assert!(matches!(err, ode_core::OdeError::Schema(_)));
        Ok(())
    })
    .unwrap();
}

// ---------------------------------------------------------------------
// Timed triggers
// ---------------------------------------------------------------------

#[test]
fn timer_events_drive_composite_expressions() {
    let db = Database::volatile();
    let fired = Arc::new(AtomicU32::new(0));
    let fired2 = Arc::clone(&fired);
    let td = ClassBuilder::new("Stock")
        .after_event("SetPrice")
        .timer_event("daily")
        .trigger(
            // Fire when a price change is followed by two daily ticks with
            // no further change (a quiet period: "the price stabilizes").
            "Stabilized",
            "after SetPrice, timer daily, timer daily",
            CouplingMode::Immediate,
            Perpetual::No,
            move |_| {
                fired2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
    let stock = db
        .with_txn(|txn| {
            let s = db.pnew(
                txn,
                &Stock {
                    symbol: "AU".into(),
                    price: 100.0,
                    prev: 100.0,
                },
            )?;
            db.activate(txn, s, "Stabilized", &())?;
            Ok(s)
        })
        .unwrap();

    // Change, tick — another change resets the sequence.
    db.with_txn(|txn| {
        set_price(&db, txn, stock, 101.0);
        db.tick(txn, "daily")?;
        set_price(&db, txn, stock, 102.0);
        db.tick(txn, "daily")?;
        Ok(())
    })
    .unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 0, "not yet stable");

    db.with_txn(|txn| {
        db.tick(txn, "daily")?;
        Ok(())
    })
    .unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 1, "stable after two ticks");
}

#[test]
fn ticks_only_reach_interested_objects() {
    let db = Database::volatile();
    let fired = Arc::new(AtomicU32::new(0));
    stock_class(&db, &fired);
    let other = ClassBuilder::new("Plain").build(db.registry()).unwrap();
    db.register_class(&other).unwrap();
    db.with_txn(|txn| {
        let s = db.pnew(
            txn,
            &Stock {
                symbol: "T".into(),
                price: 1.0,
                prev: 1.0,
            },
        )?;
        db.activate(txn, s, "AlertOnDrop", &())?;
        // One object with a trigger; the tick posts to exactly it.
        assert_eq!(db.tick(txn, "daily")?, 1);
        assert_eq!(db.tick(txn, "unknown-timer")?, 0);
        Ok(())
    })
    .unwrap();
}

// ---------------------------------------------------------------------
// Inter-object triggers
// ---------------------------------------------------------------------

#[test]
fn program_trading_inter_object_trigger() {
    // §8: "if AT&T goes below 60 and the price of gold stabilizes, buy
    // 1000 shares of AT&T".
    let db = Database::volatile();
    let fired = Arc::new(AtomicU32::new(0));
    let stock_td = stock_class(&db, &fired);

    let bought = Arc::new(AtomicU32::new(0));
    let bought2 = Arc::clone(&bought);
    let pair = InterClassBuilder::new("AttGoldWatch")
        .anchor("att", &stock_td)
        .anchor("gold", &stock_td)
        .mask("AttBelow60", |ctx| {
            let att: Stock = ctx.db().read(
                ctx.txn(),
                ode_core::PersistentPtr::from_oid(ctx.named_anchor("att")?),
            )?;
            Ok(att.price < 60.0)
        })
        .mask("GoldStable", |ctx| {
            let gold: Stock = ctx.db().read(
                ctx.txn(),
                ode_core::PersistentPtr::from_oid(ctx.named_anchor("gold")?),
            )?;
            Ok((gold.price - gold.prev).abs() < 0.5)
        })
        .trigger(
            "BuyAtt",
            "relative((after att.SetPrice & AttBelow60()), (after gold.SetPrice & GoldStable()))",
            CouplingMode::Immediate,
            Perpetual::No,
            move |_ctx| {
                bought2.fetch_add(1000, Ordering::SeqCst);
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&pair).unwrap();

    let (att, gold) = db
        .with_txn(|txn| {
            let att = db.pnew(
                txn,
                &Stock {
                    symbol: "T".into(),
                    price: 65.0,
                    prev: 65.0,
                },
            )?;
            let gold = db.pnew(
                txn,
                &Stock {
                    symbol: "AU".into(),
                    price: 100.0,
                    prev: 90.0,
                },
            )?;
            db.activate_inter(
                txn,
                "AttGoldWatch",
                "BuyAtt",
                &[("att", att.oid()), ("gold", gold.oid())],
                &(),
            )?;
            Ok((att, gold))
        })
        .unwrap();

    // Gold stabilizing first does nothing (AT&T has not dropped).
    db.with_txn(|txn| {
        set_price(&db, txn, gold, 100.2);
        Ok(())
    })
    .unwrap();
    assert_eq!(bought.load(Ordering::SeqCst), 0);

    // AT&T below 60 arms the trigger…
    db.with_txn(|txn| {
        set_price(&db, txn, att, 58.0);
        Ok(())
    })
    .unwrap();
    assert_eq!(bought.load(Ordering::SeqCst), 0);

    // …a jumpy gold price is not enough…
    db.with_txn(|txn| {
        set_price(&db, txn, gold, 110.0);
        Ok(())
    })
    .unwrap();
    assert_eq!(bought.load(Ordering::SeqCst), 0);

    // …but a stable gold price completes the composite event.
    db.with_txn(|txn| {
        set_price(&db, txn, gold, 110.1);
        Ok(())
    })
    .unwrap();
    assert_eq!(bought.load(Ordering::SeqCst), 1000);

    // Once-only: deactivated after the buy.
    db.with_txn(|txn| {
        set_price(&db, txn, att, 55.0);
        set_price(&db, txn, gold, 110.2);
        Ok(())
    })
    .unwrap();
    assert_eq!(bought.load(Ordering::SeqCst), 1000);
}

#[test]
fn inter_object_distinguishes_same_class_anchors() {
    // Both anchors are Stocks; the FSM must tell "a dropped" from "b
    // dropped" via anchor qualification.
    let db = Database::volatile();
    let fired = Arc::new(AtomicU32::new(0));
    let stock_td = stock_class(&db, &fired);
    let seq_fired = Arc::new(AtomicU32::new(0));
    let seq_fired2 = Arc::clone(&seq_fired);
    let pair = InterClassBuilder::new("PairWatch")
        .anchor("a", &stock_td)
        .anchor("b", &stock_td)
        .trigger(
            "AThenB",
            "after a.SetPrice, after b.SetPrice",
            CouplingMode::Immediate,
            Perpetual::Yes,
            move |_| {
                seq_fired2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&pair).unwrap();
    let (a, b) = db
        .with_txn(|txn| {
            let a = db.pnew(
                txn,
                &Stock {
                    symbol: "A".into(),
                    price: 1.0,
                    prev: 1.0,
                },
            )?;
            let b = db.pnew(
                txn,
                &Stock {
                    symbol: "B".into(),
                    price: 1.0,
                    prev: 1.0,
                },
            )?;
            db.activate_inter(
                txn,
                "PairWatch",
                "AThenB",
                &[("a", a.oid()), ("b", b.oid())],
                &(),
            )?;
            Ok((a, b))
        })
        .unwrap();

    // b then a: wrong order, no fire.
    db.with_txn(|txn| {
        set_price(&db, txn, b, 2.0);
        set_price(&db, txn, a, 2.0);
        Ok(())
    })
    .unwrap();
    assert_eq!(seq_fired.load(Ordering::SeqCst), 0);
    // a then b: fires.
    db.with_txn(|txn| {
        set_price(&db, txn, a, 3.0);
        set_price(&db, txn, b, 3.0);
        Ok(())
    })
    .unwrap();
    assert_eq!(seq_fired.load(Ordering::SeqCst), 1);
}
