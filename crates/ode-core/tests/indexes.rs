//! Secondary attribute indexes: automatic maintenance across every write
//! path, duplicates, ranges, persistence, and rollback.

use bytes::BytesMut;
use ode_core::{ClassBuilder, Database, Decode, Encode, OdeObject, PersistentPtr};
use ode_storage::btree::i64_key;

#[derive(Debug, Clone, PartialEq)]
struct Employee {
    name: String,
    salary: i64,
}
impl Encode for Employee {
    fn encode(&self, buf: &mut BytesMut) {
        self.name.encode(buf);
        self.salary.encode(buf);
    }
}
impl Decode for Employee {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(Employee {
            name: String::decode(buf)?,
            salary: i64::decode(buf)?,
        })
    }
}
impl OdeObject for Employee {
    const CLASS: &'static str = "Employee";
}

fn setup() -> Database {
    let db = Database::volatile();
    let td = ClassBuilder::new("Employee")
        .after_event("Raise")
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
    db
}

fn hire(db: &Database, txn: ode_core::TxnId, name: &str, salary: i64) -> PersistentPtr<Employee> {
    db.pnew(
        txn,
        &Employee {
            name: name.into(),
            salary,
        },
    )
    .unwrap()
}

#[test]
fn index_maintained_across_all_write_paths() {
    let db = setup();
    db.with_txn(|txn| {
        db.create_attribute_index::<Employee>(txn, "by_salary", |e| {
            Some(i64_key(e.salary).to_vec())
        })?;
        Ok(())
    })
    .unwrap();

    let (alice, bob, carol) = db
        .with_txn(|txn| {
            Ok((
                hire(&db, txn, "alice", 120),
                hire(&db, txn, "bob", 90),
                hire(&db, txn, "carol", 120),
            ))
        })
        .unwrap();

    // Duplicate keys: both 120-earners come back, in Oid order.
    db.with_txn(|txn| {
        let hits = db.lookup_by_index::<Employee>(txn, "by_salary", &i64_key(120))?;
        assert_eq!(hits, vec![alice, carol]);
        let hits = db.lookup_by_index::<Employee>(txn, "by_salary", &i64_key(90))?;
        assert_eq!(hits, vec![bob]);
        Ok(())
    })
    .unwrap();

    // update_with moves the entry.
    db.with_txn(|txn| {
        db.update_with(txn, bob, |e| e.salary = 120)?;
        Ok(())
    })
    .unwrap();
    db.with_txn(|txn| {
        let hits = db.lookup_by_index::<Employee>(txn, "by_salary", &i64_key(120))?;
        assert_eq!(hits.len(), 3);
        assert!(db
            .lookup_by_index::<Employee>(txn, "by_salary", &i64_key(90))?
            .is_empty());
        Ok(())
    })
    .unwrap();

    // invoke write-back moves the entry too.
    db.with_txn(|txn| {
        db.invoke(txn, alice, "Raise", |e: &mut Employee| {
            e.salary = 200;
            Ok(())
        })
    })
    .unwrap();
    db.with_txn(|txn| {
        let hits = db.lookup_by_index::<Employee>(txn, "by_salary", &i64_key(200))?;
        assert_eq!(hits, vec![alice]);
        Ok(())
    })
    .unwrap();

    // pdelete unindexes.
    db.with_txn(|txn| db.pdelete(txn, carol)).unwrap();
    db.with_txn(|txn| {
        let hits = db.lookup_by_index::<Employee>(txn, "by_salary", &i64_key(120))?;
        assert_eq!(hits, vec![bob]);
        Ok(())
    })
    .unwrap();
}

#[test]
fn range_queries_come_back_ordered() {
    let db = setup();
    db.with_txn(|txn| {
        db.create_attribute_index::<Employee>(txn, "by_salary", |e| {
            Some(i64_key(e.salary).to_vec())
        })?;
        for (name, salary) in [("a", 50), ("b", 150), ("c", 100), ("d", -20), ("e", 250)] {
            hire(&db, txn, name, salary);
        }
        Ok(())
    })
    .unwrap();
    db.with_txn(|txn| {
        let hits = db.range_by_index::<Employee>(
            txn,
            "by_salary",
            Some(&i64_key(0)),
            Some(&i64_key(200)),
        )?;
        let names: Vec<String> = hits
            .iter()
            .map(|(_, ptr)| db.read(txn, *ptr).map(|e| e.name))
            .collect::<ode_core::Result<_>>()?;
        assert_eq!(names, vec!["a", "c", "b"], "ordered by salary");
        Ok(())
    })
    .unwrap();
}

#[test]
fn backfill_indexes_existing_objects() {
    let db = setup();
    let early = db.with_txn(|txn| Ok(hire(&db, txn, "early", 77))).unwrap();
    db.with_txn(|txn| {
        db.create_attribute_index::<Employee>(txn, "by_salary", |e| {
            Some(i64_key(e.salary).to_vec())
        })?;
        let hits = db.lookup_by_index::<Employee>(txn, "by_salary", &i64_key(77))?;
        assert_eq!(hits, vec![early]);
        Ok(())
    })
    .unwrap();
}

#[test]
fn aborted_writes_leave_the_index_untouched() {
    let db = setup();
    let alice = db
        .with_txn(|txn| {
            db.create_attribute_index::<Employee>(txn, "by_salary", |e| {
                Some(i64_key(e.salary).to_vec())
            })?;
            Ok(hire(&db, txn, "alice", 100))
        })
        .unwrap();
    let _ = db
        .with_txn(|txn| {
            db.update_with(txn, alice, |e| e.salary = 999)?;
            hire(&db, txn, "ghost", 999);
            Err::<(), _>(ode_core::OdeError::tabort("rollback"))
        })
        .unwrap_err();
    db.with_txn(|txn| {
        assert!(db
            .lookup_by_index::<Employee>(txn, "by_salary", &i64_key(999))?
            .is_empty());
        let hits = db.lookup_by_index::<Employee>(txn, "by_salary", &i64_key(100))?;
        assert_eq!(hits, vec![alice]);
        Ok(())
    })
    .unwrap();
}

#[test]
fn partial_indexes_skip_none_keys() {
    let db = setup();
    db.with_txn(|txn| {
        // Index only six-figure salaries.
        db.create_attribute_index::<Employee>(txn, "big_earners", |e| {
            (e.salary >= 100).then(|| i64_key(e.salary).to_vec())
        })?;
        hire(&db, txn, "small", 50);
        let big = hire(&db, txn, "big", 150);
        let all = db.range_by_index::<Employee>(txn, "big_earners", None, None)?;
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].1, big);
        Ok(())
    })
    .unwrap();
}

#[test]
fn index_persists_and_reattaches() {
    use ode_testutil::TempDir;
    let dir = TempDir::new("attridx");
    let alice_oid;
    {
        let db = Database::create(dir.path(), ode_core::StorageOptions::default()).unwrap();
        let td = ClassBuilder::new("Employee").build(db.registry()).unwrap();
        db.register_class(&td).unwrap();
        alice_oid = db
            .with_txn(|txn| {
                db.create_attribute_index::<Employee>(txn, "by_salary", |e| {
                    Some(i64_key(e.salary).to_vec())
                })?;
                Ok(hire(&db, txn, "alice", 123).oid())
            })
            .unwrap();
        db.close().unwrap();
    }
    {
        let db = Database::open(dir.path(), ode_core::StorageOptions::default()).unwrap();
        let td = ClassBuilder::new("Employee").build(db.registry()).unwrap();
        db.register_class(&td).unwrap();
        db.with_txn(|txn| {
            // Re-attach (same name): no re-backfill duplication.
            db.create_attribute_index::<Employee>(txn, "by_salary", |e| {
                Some(i64_key(e.salary).to_vec())
            })?;
            let hits = db.lookup_by_index::<Employee>(txn, "by_salary", &i64_key(123))?;
            assert_eq!(hits.len(), 1);
            assert_eq!(hits[0].oid(), alice_oid);
            Ok(())
        })
        .unwrap();
    }
}
