//! Behavioural pins for the posting hot path: the txn-scoped
//! trigger-state cache, anchor dedup, and the lock-free statistics view.

use bytes::BytesMut;
use ode_core::{
    ClassBuilder, CouplingMode, Database, Decode, Encode, InterClassBuilder, OdeObject, Perpetual,
    TriggerId,
};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone, PartialEq)]
struct Stock {
    price: f32,
    prev: f32,
}
impl Encode for Stock {
    fn encode(&self, buf: &mut BytesMut) {
        self.price.encode(buf);
        self.prev.encode(buf);
    }
}
impl Decode for Stock {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(Stock {
            price: f32::decode(buf)?,
            prev: f32::decode(buf)?,
        })
    }
}
impl OdeObject for Stock {
    const CLASS: &'static str = "Stock";
}

fn stock_class(db: &Database) -> Arc<ode_core::TypeDescriptor> {
    let td = ClassBuilder::new("Stock")
        .after_event("SetPrice")
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
    td
}

fn set_price(db: &Database, txn: ode_core::TxnId, s: ode_core::PersistentPtr<Stock>, p: f32) {
    db.invoke(txn, s, "SetPrice", |stock: &mut Stock| {
        stock.prev = stock.price;
        stock.price = p;
        Ok(())
    })
    .unwrap();
}

/// Regression for the `Vec::dedup` misuse in activate/deactivate:
/// `dedup` only removes *adjacent* duplicates, so an inter-object
/// activation whose anchor list repeats an object non-adjacently
/// (`[a, b, a]`) used to double-index the state record under `a` —
/// advancing it twice per posting and leaving a dangling index entry
/// behind after deactivation.
#[test]
fn repeated_non_adjacent_anchor_is_indexed_once() {
    let db = Database::volatile();
    let stock = stock_class(&db);
    let fired = Arc::new(AtomicU32::new(0));
    let fired2 = Arc::clone(&fired);
    let tri = InterClassBuilder::new("TriWatch")
        .anchor("x", &stock)
        .anchor("y", &stock)
        .anchor("z", &stock)
        .trigger(
            "Watch",
            "after x.SetPrice, after y.SetPrice",
            CouplingMode::Immediate,
            Perpetual::Yes,
            move |_| {
                fired2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&tri).unwrap();

    let (a, b, id) = db
        .with_txn(|txn| {
            let a = db.pnew(
                txn,
                &Stock {
                    price: 1.0,
                    prev: 1.0,
                },
            )?;
            let b = db.pnew(
                txn,
                &Stock {
                    price: 1.0,
                    prev: 1.0,
                },
            )?;
            // `x` and `z` bind the same object, non-adjacently.
            let id = db.activate_inter(
                txn,
                "TriWatch",
                "Watch",
                &[("x", a.oid()), ("y", b.oid()), ("z", a.oid())],
                &(),
            )?;
            Ok((a, b, id))
        })
        .unwrap();

    db.with_txn(|txn| {
        assert_eq!(db.active_triggers(txn, a.oid())?.len(), 1, "indexed once");
        assert_eq!(db.active_triggers(txn, b.oid())?.len(), 1);
        let report = db.verify_integrity(txn)?;
        assert!(report.is_healthy(), "issues: {:#?}", report.issues);
        Ok(())
    })
    .unwrap();

    // One posting must advance the instance exactly once (the double
    // index made the two-step sequence complete on a single event).
    db.reset_trigger_stats();
    db.with_txn(|txn| {
        set_price(&db, txn, a, 2.0);
        Ok(())
    })
    .unwrap();
    assert_eq!(db.trigger_stats().fsm_advances, 1);
    assert_eq!(fired.load(Ordering::SeqCst), 0, "sequence is not complete");
    db.with_txn(|txn| {
        set_price(&db, txn, b, 2.0);
        Ok(())
    })
    .unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 1);

    // Deactivation removes every entry (the bug left a dangling one
    // under the doubled anchor).
    db.with_txn(|txn| {
        assert!(db.deactivate(txn, id)?);
        assert!(db.active_triggers(txn, a.oid())?.is_empty());
        assert!(db.active_triggers(txn, b.oid())?.is_empty());
        let report = db.verify_integrity(txn)?;
        assert!(report.is_healthy(), "issues: {:#?}", report.issues);
        Ok(())
    })
    .unwrap();
}

/// An immediate action that deactivates a *sibling* trigger on the same
/// anchor, mid-posting: the sibling still fires for the event that was
/// already posted to it (fire-after-all-posted, from the captured copy),
/// but never again — no stale firing from the cache, no write-back of
/// the freed record at commit, and the flag byte clears once the last
/// trigger goes.
#[test]
fn action_deactivating_sibling_leaves_no_stale_state() {
    let db = Database::volatile();
    let victim_id: Arc<Mutex<Option<TriggerId>>> = Arc::new(Mutex::new(None));
    let victim_fired = Arc::new(AtomicU32::new(0));
    let assassin_fired = Arc::new(AtomicU32::new(0));

    let victim_id2 = Arc::clone(&victim_id);
    let victim_fired2 = Arc::clone(&victim_fired);
    let assassin_fired2 = Arc::clone(&assassin_fired);
    let td = ClassBuilder::new("Stock")
        .after_event("SetPrice")
        .trigger(
            "Assassin",
            "after SetPrice",
            CouplingMode::Immediate,
            Perpetual::Yes,
            move |ctx| {
                assassin_fired2.fetch_add(1, Ordering::SeqCst);
                if let Some(id) = victim_id2.lock().unwrap().take() {
                    ctx.db().deactivate(ctx.txn(), id)?;
                }
                Ok(())
            },
        )
        .trigger(
            "Victim",
            "after SetPrice",
            CouplingMode::Immediate,
            Perpetual::Yes,
            move |_| {
                victim_fired2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();

    let (s, assassin) = db
        .with_txn(|txn| {
            let s = db.pnew(
                txn,
                &Stock {
                    price: 1.0,
                    prev: 1.0,
                },
            )?;
            let assassin = db.activate(txn, s, "Assassin", &())?;
            let victim = db.activate(txn, s, "Victim", &())?;
            *victim_id.lock().unwrap() = Some(victim);
            Ok((s, assassin))
        })
        .unwrap();

    // Post 1: both advance before any action runs; the assassin then
    // deactivates the victim, whose own (already captured) firing still
    // runs for this event.
    db.with_txn(|txn| {
        set_price(&db, txn, s, 2.0);
        assert_eq!(db.active_triggers(txn, s.oid())?.len(), 1);
        Ok(())
    })
    .unwrap();
    assert_eq!(assassin_fired.load(Ordering::SeqCst), 1);
    assert_eq!(victim_fired.load(Ordering::SeqCst), 1);

    // Post 2 (fresh txn → fresh cache): the victim is gone for real —
    // its freed record must not have been resurrected by the commit
    // write-back.
    db.with_txn(|txn| {
        set_price(&db, txn, s, 3.0);
        let report = db.verify_integrity(txn)?;
        assert!(report.is_healthy(), "issues: {:#?}", report.issues);
        Ok(())
    })
    .unwrap();
    assert_eq!(assassin_fired.load(Ordering::SeqCst), 2);
    assert_eq!(victim_fired.load(Ordering::SeqCst), 1, "no stale firing");

    // Deactivate the assassin too: the anchor's flag byte must clear, so
    // the next posting short-circuits without an index lookup.
    db.with_txn(|txn| {
        assert!(db.deactivate(txn, assassin)?);
        Ok(())
    })
    .unwrap();
    db.reset_trigger_stats();
    db.with_txn(|txn| {
        set_price(&db, txn, s, 4.0);
        Ok(())
    })
    .unwrap();
    let stats = db.trigger_stats();
    assert_eq!(stats.index_skips, 1, "flag byte cleared → short-circuit");
    assert_eq!(stats.fsm_advances, 0);
    assert_eq!(assassin_fired.load(Ordering::SeqCst), 2);
}

/// The acceptance criterion for lock-free accounting: `trigger_stats()`
/// is a pure view over the atomic metrics registry — every field must
/// equal the corresponding counters in `Database::stats()`, and
/// rebasing the view leaves the registry untouched.
#[test]
fn trigger_stats_is_a_view_over_the_metrics_registry() {
    let db = Database::volatile();
    let fired = Arc::new(AtomicU32::new(0));
    let fired2 = Arc::clone(&fired);
    let td = ClassBuilder::new("Stock")
        .after_event("SetPrice")
        .mask("Dropped", |ctx| {
            let s: Stock = ctx.object()?;
            Ok(s.price < s.prev)
        })
        .trigger(
            "AlertOnDrop",
            "after SetPrice & Dropped()",
            CouplingMode::Immediate,
            Perpetual::Yes,
            move |_| {
                fired2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .trigger(
            "EndReport",
            "after SetPrice",
            CouplingMode::End,
            Perpetual::No,
            |_| Ok(()),
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();

    db.with_txn(|txn| {
        let s = db.pnew(
            txn,
            &Stock {
                price: 5.0,
                prev: 5.0,
            },
        )?;
        db.activate(txn, s, "AlertOnDrop", &())?;
        db.activate(txn, s, "EndReport", &())?;
        set_price(&db, txn, s, 4.0); // drop → immediate firing
        set_price(&db, txn, s, 6.0); // rise → mask false
        Ok(())
    })
    .unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 1);

    let stats = db.trigger_stats();
    let snap = db.stats();
    assert_eq!(stats.events_posted, snap.events_posted);
    assert_eq!(stats.fsm_advances, snap.fsm_advances);
    assert_eq!(stats.mask_evaluations, snap.mask_evaluations);
    assert_eq!(stats.immediate_firings, snap.firings_immediate);
    assert_eq!(
        stats.deferred_firings,
        snap.firings_end + snap.firings_dependent + snap.firings_independent
    );
    assert_eq!(stats.activations, snap.trigger_activations);
    assert_eq!(stats.deactivations, snap.trigger_deactivations);
    assert_eq!(stats.detached_failures, snap.detached_failures);
    assert_eq!(stats.index_skips, snap.index_skips);
    // The workload actually exercised the counters.
    assert!(stats.events_posted > 0);
    assert!(stats.fsm_advances > 0);
    assert!(stats.mask_evaluations > 0);
    assert_eq!(stats.immediate_firings, 1);
    assert_eq!(stats.deferred_firings, 1, "EndReport ran at commit");
    // The cache saw both a first touch and steady-state hits.
    assert!(snap.state_cache_misses > 0 || snap.state_cache_hits > 0);

    // Rebasing zeroes the view but not the registry.
    db.reset_trigger_stats();
    let rebased = db.trigger_stats();
    assert_eq!(rebased.events_posted, 0);
    assert_eq!(rebased.fsm_advances, 0);
    assert_eq!(db.stats().events_posted, snap.events_posted);
}

/// Steady-state advances inside one transaction hit the cache and defer
/// the storage write to a single commit-time write-back.
#[test]
fn cache_batches_writebacks_per_transaction() {
    let db = Database::volatile();
    let td = ClassBuilder::new("Stock")
        .after_event("SetPrice")
        .trigger(
            "Toggle",
            "after SetPrice, after SetPrice",
            CouplingMode::Immediate,
            Perpetual::Yes,
            |_| Ok(()),
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();

    let s = db
        .with_txn(|txn| {
            let s = db.pnew(
                txn,
                &Stock {
                    price: 1.0,
                    prev: 1.0,
                },
            )?;
            db.activate(txn, s, "Toggle", &())?;
            Ok(s)
        })
        .unwrap();

    db.metrics().reset();
    db.with_txn(|txn| {
        for i in 0..10 {
            set_price(&db, txn, s, i as f32);
        }
        Ok(())
    })
    .unwrap();
    let snap = db.stats();
    assert_eq!(snap.fsm_advances, 10);
    assert_eq!(snap.state_cache_misses, 1, "decoded once per txn");
    assert_eq!(snap.state_cache_hits, 9);
    assert_eq!(snap.state_writebacks, 1, "one write-back at commit");
}
