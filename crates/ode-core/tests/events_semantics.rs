//! Event-posting semantics: user events, before events, anchored
//! expressions, the fire-after-all-posted rule, and design-goal checks.

use bytes::BytesMut;
use ode_core::{ClassBuilder, CouplingMode, Database, Decode, Encode, OdeObject, Perpetual};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

#[derive(Debug, Clone, PartialEq)]
struct Counter {
    n: u32,
}
impl Encode for Counter {
    fn encode(&self, buf: &mut BytesMut) {
        self.n.encode(buf);
    }
}
impl Decode for Counter {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(Counter {
            n: u32::decode(buf)?,
        })
    }
}
impl OdeObject for Counter {
    const CLASS: &'static str = "Counter";
}

#[test]
fn before_and_after_events_bracket_the_body() {
    let db = Database::volatile();
    let order: Arc<parking_lot::Mutex<Vec<&'static str>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));
    let o1 = Arc::clone(&order);
    let o2 = Arc::clone(&order);
    let td = ClassBuilder::new("Counter")
        .before_event("Bump")
        .after_event("Bump")
        .trigger(
            "Before",
            "before Bump",
            CouplingMode::Immediate,
            Perpetual::Yes,
            move |_| {
                o1.lock().push("before");
                Ok(())
            },
        )
        .trigger(
            "After",
            "after Bump",
            CouplingMode::Immediate,
            Perpetual::Yes,
            move |ctx| {
                // The after-trigger must observe the body's effect —
                // "posts the event after PayBill" *after* the call (§5.3).
                let c: Counter = ctx.object()?;
                assert_eq!(c.n, 1, "after event sees the updated object");
                o2.lock().push("after");
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
    db.with_txn(|txn| {
        let c = db.pnew(txn, &Counter { n: 0 })?;
        db.activate(txn, c, "Before", &())?;
        db.activate(txn, c, "After", &())?;
        db.invoke(txn, c, "Bump", |c: &mut Counter| {
            order.lock().push("body");
            c.n += 1;
            Ok(())
        })?;
        Ok(())
    })
    .unwrap();
    assert_eq!(*order.lock(), vec!["before", "body", "after"]);
}

#[test]
fn user_events_must_be_declared_and_posted_explicitly() {
    let db = Database::volatile();
    let fired = Arc::new(AtomicU32::new(0));
    let f = Arc::clone(&fired);
    let td = ClassBuilder::new("Counter")
        .user_event("BigBuy")
        .trigger(
            "OnBigBuy",
            "BigBuy",
            CouplingMode::Immediate,
            Perpetual::Yes,
            move |_| {
                f.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
    db.with_txn(|txn| {
        let c = db.pnew(txn, &Counter { n: 0 })?;
        db.activate(txn, c, "OnBigBuy", &())?;
        db.post_user_event(txn, c, "BigBuy")?;
        db.post_user_event(txn, c, "BigBuy")?;
        // Undeclared events are rejected.
        let err = db.post_user_event(txn, c, "Nonsense").unwrap_err();
        assert!(matches!(err, ode_core::OdeError::Schema(_)));
        Ok(())
    })
    .unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 2);
}

#[test]
fn undeclared_member_functions_post_nothing() {
    // Design goal 3: classes pay for triggers only on declared events.
    let db = Database::volatile();
    let td = ClassBuilder::new("Counter")
        .after_event("Bump")
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
    db.with_txn(|txn| {
        let c = db.pnew(txn, &Counter { n: 0 })?;
        db.reset_trigger_stats();
        // "Silent" is not in the event declaration: no posting happens.
        db.invoke(txn, c, "Silent", |c: &mut Counter| {
            c.n += 1;
            Ok(())
        })?;
        assert_eq!(db.trigger_stats().events_posted, 0);
        // "Bump" is declared: posting happens (even with no triggers).
        db.invoke(txn, c, "Bump", |c: &mut Counter| {
            c.n += 1;
            Ok(())
        })?;
        assert_eq!(db.trigger_stats().events_posted, 1);
        // …but the per-object flag short-circuits the index lookup
        // (§5.4.5 footnote 3).
        assert_eq!(db.trigger_stats().index_skips, 1);
        Ok(())
    })
    .unwrap();
}

#[test]
fn volatile_objects_pay_nothing() {
    // Design goal 4: plain Rust values of the same type never touch the
    // trigger machinery. (This is true by construction — there is no code
    // path — so the test simply demonstrates the idiom.)
    let db = Database::volatile();
    let td = ClassBuilder::new("Counter")
        .after_event("Bump")
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
    db.reset_trigger_stats();
    let mut volatile_counter = Counter { n: 0 };
    volatile_counter.n += 1; // a "member function" on a volatile object
    assert_eq!(volatile_counter.n, 1);
    assert_eq!(db.trigger_stats().events_posted, 0);
}

#[test]
fn anchored_triggers_die_on_mismatch() {
    let db = Database::volatile();
    let fired = Arc::new(AtomicU32::new(0));
    let f = Arc::clone(&fired);
    let td = ClassBuilder::new("Counter")
        .after_event("Bump")
        .user_event("Ping")
        .trigger(
            "Anchored",
            "^after Bump, after Bump",
            CouplingMode::Immediate,
            Perpetual::Yes,
            move |_| {
                f.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();

    // Case 1: the exact prefix matches → fires.
    db.with_txn(|txn| {
        let c = db.pnew(txn, &Counter { n: 0 })?;
        db.activate(txn, c, "Anchored", &())?;
        db.invoke(txn, c, "Bump", |_: &mut Counter| Ok(()))?;
        db.invoke(txn, c, "Bump", |_: &mut Counter| Ok(()))?;
        Ok(())
    })
    .unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 1);

    // Case 2: a different declared event arrives first → the instance is
    // dead and auto-deactivated; later Bumps cannot revive it.
    db.with_txn(|txn| {
        let c = db.pnew(txn, &Counter { n: 0 })?;
        db.activate(txn, c, "Anchored", &())?;
        assert_eq!(db.active_triggers(txn, c.oid())?.len(), 1);
        db.post_user_event(txn, c, "Ping")?;
        assert!(
            db.active_triggers(txn, c.oid())?.is_empty(),
            "dead anchored instance is deactivated"
        );
        db.invoke(txn, c, "Bump", |_: &mut Counter| Ok(()))?;
        db.invoke(txn, c, "Bump", |_: &mut Counter| Ok(()))?;
        Ok(())
    })
    .unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 1);
}

#[test]
fn actions_fire_only_after_all_triggers_saw_the_event() {
    // §5.4.5: "no triggers are fired until all triggers have had the
    // basic event posted. This is to prevent the action of one trigger
    // from affecting the mask of another trigger."
    let db = Database::volatile();
    let masked_fired = Arc::new(AtomicU32::new(0));
    let mf = Arc::clone(&masked_fired);
    let td = ClassBuilder::new("Counter")
        .after_event("Bump")
        .mask("IsZero", |ctx| {
            let c: Counter = ctx.object()?;
            Ok(c.n == 0)
        })
        .trigger(
            // Sabotage: sets n to 99 when Bump happens.
            "Sabotage",
            "after Bump",
            CouplingMode::Immediate,
            Perpetual::Yes,
            |ctx| ctx.update_object(|c: &mut Counter| c.n = 99),
        )
        .trigger(
            // Guard: fires only if n was 0 when Bump happened. If Sabotage
            // ran before Guard's mask was evaluated, the mask would see 99.
            "Guard",
            "after Bump & IsZero()",
            CouplingMode::Immediate,
            Perpetual::Yes,
            move |_| {
                mf.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
    db.with_txn(|txn| {
        let c = db.pnew(txn, &Counter { n: 0 })?;
        // Activation order puts Sabotage first in the index.
        db.activate(txn, c, "Sabotage", &())?;
        db.activate(txn, c, "Guard", &())?;
        db.invoke(txn, c, "Bump", |_: &mut Counter| Ok(()))?;
        Ok(())
    })
    .unwrap();
    assert_eq!(
        masked_fired.load(Ordering::SeqCst),
        1,
        "Guard's mask ran before any action"
    );
}

#[test]
fn cascading_triggers_fire_transitively() {
    // "A trigger's action can cause another trigger to fire" (§5.4.5).
    let db = Database::volatile();
    let chain_done = Arc::new(AtomicU32::new(0));
    let cd = Arc::clone(&chain_done);
    let td = ClassBuilder::new("Counter")
        .after_event("Bump")
        .user_event("Escalate")
        .trigger(
            "Escalator",
            "after Bump",
            CouplingMode::Immediate,
            Perpetual::Yes,
            |ctx| {
                let ptr = ctx.anchor::<Counter>();
                ctx.db().post_user_event(ctx.txn(), ptr, "Escalate")
            },
        )
        .trigger(
            "Final",
            "Escalate",
            CouplingMode::Immediate,
            Perpetual::Yes,
            move |_| {
                cd.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
    db.with_txn(|txn| {
        let c = db.pnew(txn, &Counter { n: 0 })?;
        db.activate(txn, c, "Escalator", &())?;
        db.activate(txn, c, "Final", &())?;
        db.invoke(txn, c, "Bump", |_: &mut Counter| Ok(()))?;
        Ok(())
    })
    .unwrap();
    assert_eq!(chain_done.load(Ordering::SeqCst), 1);
}

#[test]
fn star_and_union_expressions_work_end_to_end() {
    let db = Database::volatile();
    let fired = Arc::new(AtomicU32::new(0));
    let f = Arc::clone(&fired);
    let td = ClassBuilder::new("Counter")
        .after_event("Bump")
        .user_event("Ping")
        .user_event("Pong")
        .trigger(
            // A Bump, then any (possibly empty) run of Pings, then a Pong.
            "Pattern",
            "after Bump, *Ping, Pong",
            CouplingMode::Immediate,
            Perpetual::Yes,
            move |_| {
                f.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
    let c = db
        .with_txn(|txn| {
            let c = db.pnew(txn, &Counter { n: 0 })?;
            db.activate(txn, c, "Pattern", &())?;
            Ok(c)
        })
        .unwrap();
    db.with_txn(|txn| {
        db.invoke(txn, c, "Bump", |_: &mut Counter| Ok(()))?;
        db.post_user_event(txn, c, "Ping")?;
        db.post_user_event(txn, c, "Ping")?;
        db.post_user_event(txn, c, "Pong")?; // fires (Bump, Ping, Ping, Pong)
        db.post_user_event(txn, c, "Pong")?; // no new Bump-anchored window
        Ok(())
    })
    .unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 1);
    db.with_txn(|txn| {
        db.invoke(txn, c, "Bump", |_: &mut Counter| Ok(()))?;
        db.post_user_event(txn, c, "Pong")?; // zero Pings also matches
        Ok(())
    })
    .unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 2);
}

#[test]
fn read_write_lock_amplification_is_observable() {
    // §6: "triggers turn read access into write access". A method that
    // does not modify the object still advances the FSM, which updates the
    // persistent trigger state — a write.
    let db = Database::volatile();
    let td = ClassBuilder::new("Counter")
        .after_event("Peek")
        .user_event("Other")
        .trigger(
            "TwoStep",
            "after Peek, Other",
            CouplingMode::Immediate,
            Perpetual::Yes,
            |_| Ok(()),
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
    let c = db
        .with_txn(|txn| {
            let c = db.pnew(txn, &Counter { n: 0 })?;
            db.activate(txn, c, "TwoStep", &())?;
            Ok(c)
        })
        .unwrap();
    db.with_txn(|txn| {
        db.storage().reset_lock_stats();
        // A pure read via invoke: no object write, but the FSM moves
        // start → armed, forcing a write on the trigger state record.
        db.invoke(txn, c, "Peek", |_: &mut Counter| Ok(()))?;
        Ok(())
    })
    .unwrap();
    // We can't easily isolate one lock, but the semantic effect is
    // checkable: the trigger state advanced (persistent write happened).
    db.with_txn(|txn| {
        db.post_user_event(txn, c, "Other")?; // completes the sequence
        Ok(())
    })
    .unwrap();
    let stats = db.trigger_stats();
    assert_eq!(stats.immediate_firings, 1);
}

#[test]
fn conjunction_triggers_work_through_the_database() {
    // §8's motivating shape as an intra-object trigger: both a Bump and a
    // Ping must have happened, in either order.
    let db = Database::volatile();
    let fired = Arc::new(AtomicU32::new(0));
    let f = Arc::clone(&fired);
    let td = ClassBuilder::new("Counter")
        .after_event("Bump")
        .user_event("Ping")
        .trigger(
            "BothWays",
            "after Bump && Ping",
            CouplingMode::Immediate,
            Perpetual::No,
            move |_| {
                f.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();

    // Order 1: Ping then Bump.
    db.with_txn(|txn| {
        let c = db.pnew(txn, &Counter { n: 0 })?;
        db.activate(txn, c, "BothWays", &())?;
        db.post_user_event(txn, c, "Ping")?;
        db.invoke(txn, c, "Bump", |_: &mut Counter| Ok(()))?;
        Ok(())
    })
    .unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 1);

    // Order 2: Bump then (later transaction) Ping.
    let c2 = db
        .with_txn(|txn| {
            let c = db.pnew(txn, &Counter { n: 0 })?;
            db.activate(txn, c, "BothWays", &())?;
            db.invoke(txn, c, "Bump", |_: &mut Counter| Ok(()))?;
            Ok(c)
        })
        .unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 1, "one side is not enough");
    db.with_txn(|txn| db.post_user_event(txn, c2, "Ping"))
        .unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 2);
}
