//! The full coupling-mode × transaction-outcome matrix (§4.2, §5.5),
//! cross-checked against the observability counters.
//!
//! For each coupling mode {immediate, deferred/end, dependent,
//! !dependent} and each outcome {commit, abort}, one cell of the matrix
//! asserts both the *semantic* result (did the action's write survive?)
//! and the *metrics* result (which `firings_*` counter moved, and what
//! the commit/abort queue depths were).

use bytes::BytesMut;
use ode_core::{
    ClassBuilder, CouplingMode, Database, Decode, Encode, OdeObject, Perpetual, PersistentPtr,
};

#[derive(Debug, Clone, PartialEq, Default)]
struct Audit {
    lines: Vec<String>,
}

impl Encode for Audit {
    fn encode(&self, buf: &mut BytesMut) {
        self.lines.encode(buf);
    }
}
impl Decode for Audit {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(Audit {
            lines: Vec::<String>::decode(buf)?,
        })
    }
}
impl OdeObject for Audit {
    const CLASS: &'static str = "Audit";
}

#[derive(Debug, Clone, PartialEq)]
struct Account {
    balance: i64,
}

impl Encode for Account {
    fn encode(&self, buf: &mut BytesMut) {
        self.balance.encode(buf);
    }
}
impl Decode for Account {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(Account {
            balance: i64::decode(buf)?,
        })
    }
}
impl OdeObject for Account {
    const CLASS: &'static str = "Account";
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Commit,
    Abort,
}

/// One cell of the matrix: a fresh database with a single trigger of the
/// given coupling mode, one Deposit inside a transaction that then
/// commits or aborts. Returns (audit lines, metrics snapshot).
fn run_cell(mode: CouplingMode, outcome: Outcome) -> (Vec<String>, ode_obs::MetricsSnapshot) {
    let db = Database::volatile();
    let audit_td = ClassBuilder::new("Audit").build(db.registry()).unwrap();
    db.register_class(&audit_td).unwrap();
    let account_td = ClassBuilder::new("Account")
        .after_event("Deposit")
        .trigger("Log", "after Deposit", mode, Perpetual::Yes, |ctx| {
            let audit: PersistentPtr<Audit> = ctx.params()?;
            ctx.db()
                .update_with(ctx.txn(), audit, |a| a.lines.push("fired".into()))
        })
        .build(db.registry())
        .unwrap();
    db.register_class(&account_td).unwrap();

    let (account, audit) = db
        .with_txn(|txn| {
            let audit = db.pnew(txn, &Audit::default())?;
            let account = db.pnew(txn, &Account { balance: 0 })?;
            db.activate(txn, account, "Log", &audit)?;
            Ok((account, audit))
        })
        .unwrap();

    // Count only the measured transaction.
    db.metrics().reset();

    let deposit = |txn| {
        db.invoke(txn, account, "Deposit", |a: &mut Account| {
            a.balance += 10;
            Ok(())
        })
    };
    match outcome {
        Outcome::Commit => db.with_txn(deposit).unwrap(),
        Outcome::Abort => {
            let err = db
                .with_txn(|txn| {
                    deposit(txn)?;
                    Err::<(), _>(ode_core::OdeError::tabort("matrix abort"))
                })
                .unwrap_err();
            assert!(err.is_abort());
        }
    }

    // Snapshot before the read-back transaction adds its own commit.
    let snap = db.stats();
    let lines = db.with_txn(|txn| Ok(db.read(txn, audit)?.lines)).unwrap();
    (lines, snap)
}

/// Expected matrix, straight from §5.5:
///
/// | mode        | commit                  | abort                      |
/// |-------------|-------------------------|----------------------------|
/// | immediate   | fires inline            | ran, then rolled back      |
/// | end         | fires pre-commit        | never runs                 |
/// | dependent   | fires post-commit       | never runs                 |
/// | !dependent  | fires post-commit       | fires post-abort           |
#[test]
fn coupling_outcome_matrix_with_metrics() {
    let all = [
        CouplingMode::Immediate,
        CouplingMode::End,
        CouplingMode::Dependent,
        CouplingMode::Independent,
    ];
    for mode in all {
        for outcome in [Outcome::Commit, Outcome::Abort] {
            let (lines, snap) = run_cell(mode, outcome);
            let cell = format!("{mode:?} x {outcome:?}");

            // --- Semantic outcome: did the action's write survive? ---
            let survives = match (mode, outcome) {
                // Immediate runs inside the detecting transaction, so its
                // write is rolled back with it.
                (CouplingMode::Immediate, Outcome::Abort) => false,
                // End and dependent actions are discarded on abort.
                (CouplingMode::End, Outcome::Abort) => false,
                (CouplingMode::Dependent, Outcome::Abort) => false,
                // Everything fires (and persists) on commit; !dependent
                // also survives abort.
                _ => true,
            };
            assert_eq!(
                lines,
                if survives { vec!["fired"] } else { vec![] },
                "{cell}: audit"
            );

            // --- Metrics: which firing counter moved? ---
            // Counters are process-global atomics, not transactional
            // state: an immediate action that later rolls back still
            // *executed*, so its firing is still counted.
            let executed = match (mode, outcome) {
                (CouplingMode::End, Outcome::Abort) => 0,
                (CouplingMode::Dependent, Outcome::Abort) => 0,
                _ => 1,
            };
            let by_mode = [
                (CouplingMode::Immediate, snap.firings_immediate),
                (CouplingMode::End, snap.firings_end),
                (CouplingMode::Dependent, snap.firings_dependent),
                (CouplingMode::Independent, snap.firings_independent),
            ];
            for (m, count) in by_mode {
                let want = if m == mode { executed } else { 0 };
                assert_eq!(count, want, "{cell}: firings for {m:?}");
            }

            // --- Metrics: queue depths at transaction end (§5.5's
            // per-transaction dep/indep lists). End actions run *inside*
            // the detecting transaction and never sit on a detached
            // queue. The user commit contributes the detached entries;
            // run_detached's own system transactions drain empty queues.
            let detached = matches!(mode, CouplingMode::Dependent | CouplingMode::Independent);
            let want_commit_q = if detached && outcome == Outcome::Commit {
                1
            } else {
                0
            };
            let want_abort_q = if mode == CouplingMode::Independent && outcome == Outcome::Abort {
                1
            } else {
                0
            };
            assert_eq!(
                snap.commit_queue_depth, want_commit_q,
                "{cell}: commit queue"
            );
            assert_eq!(snap.abort_queue_depth, want_abort_q, "{cell}: abort queue");

            // The event posting itself is always observed, whatever the
            // coupling mode or outcome.
            assert_eq!(snap.events_posted, 1, "{cell}: events_posted");
            assert!(snap.detached_failures == 0, "{cell}: no detached failures");
        }
    }
}

/// The firings-by-mode counters partition total firings: a transaction
/// with all four couplings active moves all four counters by exactly one.
#[test]
fn all_modes_counted_once_in_one_transaction() {
    let db = Database::volatile();
    let audit_td = ClassBuilder::new("Audit").build(db.registry()).unwrap();
    db.register_class(&audit_td).unwrap();
    let mut builder = ClassBuilder::new("Account").after_event("Deposit");
    for (name, mode) in [
        ("LogNow", CouplingMode::Immediate),
        ("LogAtEnd", CouplingMode::End),
        ("LogDependent", CouplingMode::Dependent),
        ("LogIndependent", CouplingMode::Independent),
    ] {
        builder = builder.trigger(name, "after Deposit", mode, Perpetual::Yes, |ctx| {
            let audit: PersistentPtr<Audit> = ctx.params()?;
            ctx.db()
                .update_with(ctx.txn(), audit, |a| a.lines.push("fired".into()))
        });
    }
    let account_td = builder.build(db.registry()).unwrap();
    db.register_class(&account_td).unwrap();

    let (account, audit) = db
        .with_txn(|txn| {
            let audit = db.pnew(txn, &Audit::default())?;
            let account = db.pnew(txn, &Account { balance: 0 })?;
            for t in ["LogNow", "LogAtEnd", "LogDependent", "LogIndependent"] {
                db.activate(txn, account, t, &audit)?;
            }
            Ok((account, audit))
        })
        .unwrap();
    db.metrics().reset();
    db.with_txn(|txn| {
        db.invoke(txn, account, "Deposit", |a: &mut Account| {
            a.balance += 1;
            Ok(())
        })
    })
    .unwrap();
    let snap = db.stats();
    assert_eq!(snap.firings_immediate, 1);
    assert_eq!(snap.firings_end, 1);
    assert_eq!(snap.firings_dependent, 1);
    assert_eq!(snap.firings_independent, 1);
    // Both detached actions were queued on the committing transaction.
    assert_eq!(snap.commit_queue_depth, 2);
    assert_eq!(snap.abort_queue_depth, 0);
    assert_eq!(
        db.with_txn(|txn| Ok(db.read(txn, audit)?.lines))
            .unwrap()
            .len(),
        4
    );
}
