//! `with_txn_retry`: deadlock victims rerun, application aborts do not.

use bytes::BytesMut;
use ode_core::{ClassBuilder, Database, Decode, Encode, OdeObject};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Barrier};

#[derive(Debug, Clone)]
struct Cell {
    v: i64,
}
impl Encode for Cell {
    fn encode(&self, buf: &mut BytesMut) {
        self.v.encode(buf);
    }
}
impl Decode for Cell {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(Cell {
            v: i64::decode(buf)?,
        })
    }
}
impl OdeObject for Cell {
    const CLASS: &'static str = "Cell";
}

fn setup() -> (
    Arc<Database>,
    ode_core::PersistentPtr<Cell>,
    ode_core::PersistentPtr<Cell>,
) {
    let db = Arc::new(Database::volatile());
    let td = ClassBuilder::new("Cell").build(db.registry()).unwrap();
    db.register_class(&td).unwrap();
    let (a, b) = db
        .with_txn(|txn| Ok((db.pnew(txn, &Cell { v: 0 })?, db.pnew(txn, &Cell { v: 0 })?)))
        .unwrap();
    (db, a, b)
}

#[test]
fn success_passes_through() {
    let (db, a, _) = setup();
    let v = db
        .with_txn_retry(3, |txn| {
            db.update_with(txn, a, |c| c.v += 1)?;
            Ok(7)
        })
        .unwrap();
    assert_eq!(v, 7);
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, a)?.v, 1, "exactly one attempt ran");
        Ok(())
    })
    .unwrap();
}

#[test]
fn application_aborts_are_not_retried() {
    let (db, a, _) = setup();
    let attempts = AtomicU32::new(0);
    let err = db
        .with_txn_retry(5, |txn| {
            attempts.fetch_add(1, Ordering::SeqCst);
            db.update_with(txn, a, |c| c.v += 1)?;
            Err::<(), _>(ode_core::OdeError::tabort("no"))
        })
        .unwrap_err();
    assert!(err.is_abort());
    assert_eq!(attempts.load(Ordering::SeqCst), 1, "tabort must not retry");
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, a)?.v, 0);
        Ok(())
    })
    .unwrap();
}

#[test]
fn deadlock_victims_retry_to_completion() {
    // Two threads update (a, b) in opposite orders, guaranteeing deadlock
    // cycles; with retry both eventually complete all rounds.
    let (db, a, b) = setup();
    const ROUNDS: i64 = 40;
    let barrier = Arc::new(Barrier::new(2));
    let mut handles = Vec::new();
    for order_ab in [true, false] {
        let db = Arc::clone(&db);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for _ in 0..ROUNDS {
                db.with_txn_retry(1000, |txn| {
                    let (first, second) = if order_ab { (a, b) } else { (b, a) };
                    db.update_with(txn, first, |c| c.v += 1)?;
                    db.update_with(txn, second, |c| c.v += 1)?;
                    Ok(())
                })
                .expect("retry loop must eventually succeed");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, a)?.v, 2 * ROUNDS);
        assert_eq!(db.read(txn, b)?.v, 2 * ROUNDS);
        Ok(())
    })
    .unwrap();
}
