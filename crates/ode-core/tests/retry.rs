//! `with_txn_retry`: deadlock victims rerun, application aborts do not —
//! and aborts roll trigger-state advances back with everything else.

use bytes::BytesMut;
use ode_core::{ClassBuilder, CouplingMode, Database, Decode, Encode, OdeObject, Perpetual};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Barrier};

#[derive(Debug, Clone)]
struct Cell {
    v: i64,
}
impl Encode for Cell {
    fn encode(&self, buf: &mut BytesMut) {
        self.v.encode(buf);
    }
}
impl Decode for Cell {
    fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
        Ok(Cell {
            v: i64::decode(buf)?,
        })
    }
}
impl OdeObject for Cell {
    const CLASS: &'static str = "Cell";
}

fn setup() -> (
    Arc<Database>,
    ode_core::PersistentPtr<Cell>,
    ode_core::PersistentPtr<Cell>,
) {
    let db = Arc::new(Database::volatile());
    let td = ClassBuilder::new("Cell").build(db.registry()).unwrap();
    db.register_class(&td).unwrap();
    let (a, b) = db
        .with_txn(|txn| Ok((db.pnew(txn, &Cell { v: 0 })?, db.pnew(txn, &Cell { v: 0 })?)))
        .unwrap();
    (db, a, b)
}

#[test]
fn success_passes_through() {
    let (db, a, _) = setup();
    let v = db
        .with_txn_retry(3, |txn| {
            db.update_with(txn, a, |c| c.v += 1)?;
            Ok(7)
        })
        .unwrap();
    assert_eq!(v, 7);
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, a)?.v, 1, "exactly one attempt ran");
        Ok(())
    })
    .unwrap();
}

#[test]
fn application_aborts_are_not_retried() {
    let (db, a, _) = setup();
    let attempts = AtomicU32::new(0);
    let err = db
        .with_txn_retry(5, |txn| {
            attempts.fetch_add(1, Ordering::SeqCst);
            db.update_with(txn, a, |c| c.v += 1)?;
            Err::<(), _>(ode_core::OdeError::tabort("no"))
        })
        .unwrap_err();
    assert!(err.is_abort());
    assert_eq!(attempts.load(Ordering::SeqCst), 1, "tabort must not retry");
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, a)?.v, 0);
        Ok(())
    })
    .unwrap();
}

#[test]
fn deadlock_victims_retry_to_completion() {
    // Two threads update (a, b) in opposite orders, guaranteeing deadlock
    // cycles; with retry both eventually complete all rounds.
    let (db, a, b) = setup();
    const ROUNDS: i64 = 40;
    let barrier = Arc::new(Barrier::new(2));
    let mut handles = Vec::new();
    for order_ab in [true, false] {
        let db = Arc::clone(&db);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for _ in 0..ROUNDS {
                db.with_txn_retry(1000, |txn| {
                    let (first, second) = if order_ab { (a, b) } else { (b, a) };
                    db.update_with(txn, first, |c| c.v += 1)?;
                    db.update_with(txn, second, |c| c.v += 1)?;
                    Ok(())
                })
                .expect("retry loop must eventually succeed");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, a)?.v, 2 * ROUNDS);
        assert_eq!(db.read(txn, b)?.v, 2 * ROUNDS);
        Ok(())
    })
    .unwrap();
}

/// The write-back path under abort: FSM advances inside an aborted
/// transaction must leave the *stored* statenums untouched. With the
/// txn-scoped state cache the advances never reach storage at all (the
/// cache is dropped, zero write-backs), so a rerun sees the trigger in
/// its pre-abort state.
#[test]
fn aborted_advances_leave_stored_statenums_untouched() {
    let fired = Arc::new(AtomicU32::new(0));
    let fired2 = Arc::clone(&fired);
    let db = Database::volatile();
    let td = ClassBuilder::new("Meter")
        .after_event("Inc")
        .trigger(
            "TwoIncs",
            "after Inc, after Inc",
            CouplingMode::Immediate,
            Perpetual::Yes,
            move |_| {
                fired2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();

    #[derive(Debug, Clone)]
    struct Meter {
        n: i64,
    }
    impl Encode for Meter {
        fn encode(&self, buf: &mut BytesMut) {
            self.n.encode(buf);
        }
    }
    impl Decode for Meter {
        fn decode(buf: &mut &[u8]) -> ode_storage::Result<Self> {
            Ok(Meter {
                n: i64::decode(buf)?,
            })
        }
    }
    impl OdeObject for Meter {
        const CLASS: &'static str = "Meter";
    }

    let m = db
        .with_txn(|txn| {
            let m = db.pnew(txn, &Meter { n: 0 })?;
            db.activate(txn, m, "TwoIncs", &())?;
            Ok(m)
        })
        .unwrap();

    // Advance the FSM one step (of two), then abort.
    db.metrics().reset();
    let err = db
        .with_txn(|txn| {
            db.invoke(txn, m, "Inc", |mm: &mut Meter| {
                mm.n += 1;
                Ok(())
            })?;
            Err::<(), _>(ode_core::OdeError::tabort("roll it back"))
        })
        .unwrap_err();
    assert!(err.is_abort());
    let snap = db.stats();
    assert_eq!(snap.fsm_advances, 1, "the advance did happen in-txn");
    assert_eq!(snap.state_writebacks, 0, "…but never reached storage");
    assert_eq!(fired.load(Ordering::SeqCst), 0);

    // A fresh transaction starts from the *stored* state: it still takes
    // two Incs to fire. Had the aborted advance leaked, one would do.
    db.with_txn(|txn| {
        db.invoke(txn, m, "Inc", |mm: &mut Meter| {
            mm.n += 1;
            Ok(())
        })?;
        Ok(())
    })
    .unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 0, "one Inc is not enough");
    db.with_txn(|txn| {
        db.invoke(txn, m, "Inc", |mm: &mut Meter| {
            mm.n += 1;
            Ok(())
        })?;
        Ok(())
    })
    .unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 1, "two fresh Incs fire");
}
