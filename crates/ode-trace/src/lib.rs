//! Hierarchical statement spans for the Ode reproduction.
//!
//! The paper's central implementation claim (§5–§6) is that a trigger
//! firing is a *causal cascade*: an event post advances trigger FSMs,
//! advances fire actions, coupling modes spill work into system
//! transactions, and a commit makes the whole thing durable. This crate
//! records that cascade as a tree of **spans** — one per statement,
//! parse, lock wait, event post, FSM advance, action, system
//! transaction, and WAL flush wait — so `SHOW TRACE` / `EXPLAIN` can
//! answer "why was this statement slow, and what did it set off?".
//!
//! ## Design
//!
//! * **Per-session [`TraceBuffer`]**: a bounded seqlock ring of `Copy`
//!   [`SpanRecord`]s, the same lock-free discipline as `ode-obs`'s
//!   flight recorder. Each session owns its ring, so concurrent
//!   sessions never contend on a shared structure.
//! * **Thread-local ambient context**: a session *installs* its buffer
//!   and a trace id at statement start ([`install`]); every layer below
//!   (storage locks, event posting, coupling-mode commits) opens spans
//!   with [`span`] without any plumbing through call signatures. When
//!   nothing is installed a span guard is a single thread-local flag
//!   read and two dead stores — the tracing-off overhead budget is the
//!   PR 4 flight-recorder bar (≤5% on the post hot path).
//! * **Parent linkage by nesting**: opening a span makes it the current
//!   parent; dropping it restores the previous parent. Coupling-mode
//!   system transactions run on the posting thread between
//!   `commit_deferred` and `commit_wait`, so their spans nest under the
//!   statement span with no explicit propagation (see DESIGN.md).
//!
//! This crate is std-only and dependency-free: `ode-obs` links it to
//! stamp the (trace_id, parent_span, span_id) triple onto flight
//! records, so it must sit at the very bottom of the workspace graph.

#![warn(missing_docs)]

use std::cell::{Cell, RefCell};
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------
// Span records
// ---------------------------------------------------------------------

/// What a span measures. The `a`/`b` payload fields of a [`SpanRecord`]
/// are interpreted per kind (documented on each variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// One `Session::execute` call. `name` = statement verb.
    Statement,
    /// Statement text → AST. No payload.
    Parse,
    /// A lock request that had to wait. `a` = waiting txn id,
    /// `b` = 1 for exclusive mode.
    LockWait,
    /// One basic-event post, end to end. `name` = event prototype,
    /// `a` = anchor oid, `b` = posting txn id.
    Post,
    /// One trigger-instance FSM advance. `name` = trigger,
    /// `a` = from-state, `b` = to-state.
    FsmAdvance,
    /// One trigger action execution. `name` = trigger.
    Action,
    /// A detached (dependent / !dependent) firing's system transaction.
    /// `name` = coupling label, `a` = system txn id, `b` = parent user
    /// txn id (0 for `!dependent`).
    SystemTxn,
    /// The WAL flush wait: commit issued → commit record durable.
    /// `a` = txn id, `b` = commit LSN.
    Commit,
}

impl SpanKind {
    /// Stable lower-snake label used by the span-tree renderer.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Statement => "statement",
            SpanKind::Parse => "parse",
            SpanKind::LockWait => "lock_wait",
            SpanKind::Post => "post",
            SpanKind::FsmAdvance => "fsm_advance",
            SpanKind::Action => "action",
            SpanKind::SystemTxn => "system_txn",
            SpanKind::Commit => "commit",
        }
    }
}

/// Maximum bytes of a span name stored inline (mirrors `ode-obs`'s
/// `SmallStr`, which cannot be imported from below it in the graph).
pub const SPAN_NAME_CAP: usize = 23;

/// A fixed-capacity inline string so [`SpanRecord`]s stay `Copy` and
/// recording never allocates. Longer names truncate at a char boundary.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SpanName {
    len: u8,
    bytes: [u8; SPAN_NAME_CAP],
}

impl SpanName {
    /// Store `s`, truncating to [`SPAN_NAME_CAP`] bytes at a char
    /// boundary.
    pub fn new(s: &str) -> SpanName {
        let mut n = s.len().min(SPAN_NAME_CAP);
        while n > 0 && !s.is_char_boundary(n) {
            n -= 1;
        }
        let mut bytes = [0u8; SPAN_NAME_CAP];
        bytes[..n].copy_from_slice(&s.as_bytes()[..n]);
        SpanName {
            len: n as u8,
            bytes,
        }
    }

    /// The stored string.
    pub fn as_str(&self) -> &str {
        let n = (self.len as usize).min(SPAN_NAME_CAP);
        std::str::from_utf8(&self.bytes[..n]).unwrap_or("")
    }
}

impl std::fmt::Debug for SpanName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_str().fmt(f)
    }
}

impl std::fmt::Display for SpanName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One completed span: identity triple, kind, name, kind-specific
/// payload, and timing relative to the owning buffer's origin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// The statement this span belongs to (session-unique, nonzero).
    pub trace_id: u64,
    /// This span's id, unique within its trace (statement span = 1).
    pub span_id: u64,
    /// The enclosing span's id; 0 marks the trace root.
    pub parent: u64,
    /// What was measured.
    pub kind: SpanKind,
    /// Kind-specific name (verb, event, trigger, coupling label).
    pub name: SpanName,
    /// First kind-specific payload (see [`SpanKind`]).
    pub a: u64,
    /// Second kind-specific payload (see [`SpanKind`]).
    pub b: u64,
    /// Span open time, nanoseconds since the buffer's origin.
    pub start_nanos: u64,
    /// Span duration in nanoseconds.
    pub dur_nanos: u64,
}

const SPAN_INIT: SpanRecord = SpanRecord {
    trace_id: 0,
    span_id: 0,
    parent: 0,
    kind: SpanKind::Statement,
    name: SpanName {
        len: 0,
        bytes: [0; SPAN_NAME_CAP],
    },
    a: 0,
    b: 0,
    start_nanos: 0,
    dur_nanos: 0,
};

// ---------------------------------------------------------------------
// The per-session span ring
// ---------------------------------------------------------------------

/// Default per-session ring capacity in spans. A Figure-1 cascade is
/// ~10 spans; 512 holds even a statement that fires dozens of triggers
/// through multi-step FSMs without wrapping.
pub const DEFAULT_TRACE_CAPACITY: usize = 512;

struct Slot {
    /// Seqlock version: `2*seq + 1` while the record for `seq` is being
    /// written, `2*seq + 2` once complete; the initial 0 matches no
    /// completed version, so uninitialised slots are never surfaced.
    version: AtomicU64,
    data: std::cell::UnsafeCell<SpanRecord>,
}

// SAFETY: concurrent access to `data` is mediated by the per-slot
// seqlock version — readers discard any record whose version is not the
// exact completed value both before and after the volatile copy.
unsafe impl Sync for Slot {}

/// A bounded, lock-free ring of completed [`SpanRecord`]s — one per
/// session, so recording never contends across sessions. Same seqlock
/// discipline as the `ode-obs` flight recorder: writers claim a slot
/// with one `fetch_add` and publish odd-while-writing / even-complete
/// versions; [`TraceBuffer::snapshot`] skips torn slots.
pub struct TraceBuffer {
    head: AtomicU64,
    slots: Box<[Slot]>,
    mask: u64,
    origin: Instant,
}

impl TraceBuffer {
    /// A buffer holding the last `capacity` spans (rounded up to a power
    /// of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> TraceBuffer {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Vec<Slot> = (0..cap)
            .map(|_| Slot {
                version: AtomicU64::new(0),
                data: std::cell::UnsafeCell::new(SPAN_INIT),
            })
            .collect();
        TraceBuffer {
            head: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
            mask: (cap - 1) as u64,
            origin: Instant::now(),
        }
    }

    /// A buffer with [`DEFAULT_TRACE_CAPACITY`] slots.
    pub fn new() -> TraceBuffer {
        TraceBuffer::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Ring capacity in spans.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Nanoseconds since this buffer was created (monotonic clock) —
    /// the time base of every [`SpanRecord`] it holds.
    pub fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Append one completed span. Lock-free: one `fetch_add` to claim a
    /// slot, then a seqlock-guarded plain write.
    pub fn record(&self, rec: SpanRecord) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        slot.version.store(2 * seq + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        // SAFETY: the slot is marked write-in-progress (odd version);
        // readers validate the version on both sides of their copy and
        // discard mismatches, so a torn record is never observed.
        unsafe {
            *slot.data.get() = rec;
        }
        slot.version.store(2 * seq + 2, Ordering::Release);
    }

    /// Copy out the surviving window in completion order (a child span
    /// completes before its parent). Slots a lapping writer was mid-way
    /// through are skipped rather than surfaced torn.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for seq in start..head {
            let slot = &self.slots[(seq & self.mask) as usize];
            let complete = 2 * seq + 2;
            if slot.version.load(Ordering::Acquire) != complete {
                continue;
            }
            // SAFETY: volatile copy plus version re-check rejects any
            // read that raced a writer.
            let rec = unsafe { std::ptr::read_volatile(slot.data.get()) };
            fence(Ordering::Acquire);
            if slot.version.load(Ordering::Relaxed) != complete {
                continue;
            }
            out.push(rec);
        }
        out
    }

    /// The surviving spans of one trace, sorted by start time (ties
    /// broken by span id, which increases in open order).
    pub fn trace(&self, trace_id: u64) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = self
            .snapshot()
            .into_iter()
            .filter(|s| s.trace_id == trace_id)
            .collect();
        spans.sort_by_key(|s| (s.start_nanos, s.span_id));
        spans
    }
}

impl Default for TraceBuffer {
    fn default() -> TraceBuffer {
        TraceBuffer::new()
    }
}

impl std::fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("capacity", &self.capacity())
            .field("head", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

/// Allocate a process-unique, nonzero trace id. Sessions call this once
/// per traced statement; uniqueness across sessions keeps flight-record
/// stamps unambiguous even when rings are shared with a dump reader.
pub fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Ambient thread-local context
// ---------------------------------------------------------------------

struct Ctx {
    buf: Arc<TraceBuffer>,
    trace_id: u64,
    /// Innermost open span (0 = at the root).
    parent: u64,
    next_span: u64,
}

thread_local! {
    /// Fast gate read by every `span()` call; true only between
    /// `install` and the guard's drop. Kept separate from CTX so the
    /// tracing-off path is a single Cell load.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Uninstalls the ambient trace context on drop (end of statement).
#[must_use = "dropping the guard ends the trace"]
pub struct TraceGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Install `buf` as this thread's ambient trace context under
/// `trace_id`. Every [`span`] opened on this thread until the returned
/// guard drops records into `buf` as part of that trace. Installing
/// over an existing context replaces it (the displaced trace simply
/// stops recording — sessions are single-threaded, so this only happens
/// if a caller leaks a guard).
pub fn install(buf: Arc<TraceBuffer>, trace_id: u64) -> TraceGuard {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            buf,
            trace_id,
            parent: 0,
            next_span: 1,
        });
    });
    ACTIVE.with(|a| a.set(true));
    TraceGuard {
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| a.set(false));
        CTX.with(|c| *c.borrow_mut() = None);
    }
}

/// The identity of the current trace position: `(trace_id,
/// innermost_open_span)`, or `(0, 0)` when no context is installed.
/// `ode-obs` stamps this pair (plus its own record identity) onto every
/// flight record so the engine-global flight log can be joined against
/// per-session span trees.
#[inline]
pub fn current_ids() -> (u64, u64) {
    if !ACTIVE.with(|a| a.get()) {
        return (0, 0);
    }
    CTX.with(|c| {
        c.borrow()
            .as_ref()
            .map(|ctx| (ctx.trace_id, ctx.parent))
            .unwrap_or((0, 0))
    })
}

struct OpenSpan {
    trace_id: u64,
    span_id: u64,
    parent: u64,
    kind: SpanKind,
    name: SpanName,
    a: u64,
    b: u64,
    start_nanos: u64,
}

/// An RAII span guard: records a [`SpanRecord`] with its measured
/// duration when dropped. Inert (a no-op with no allocation) when no
/// ambient context is installed on this thread.
pub struct Span {
    open: Option<OpenSpan>,
}

/// Open a span of `kind` under the current trace, making it the parent
/// of spans opened before it drops. Inert when tracing is not installed
/// on this thread — the off path is one thread-local flag read.
#[inline]
pub fn span(kind: SpanKind, name: &str) -> Span {
    if !ACTIVE.with(|a| a.get()) {
        return Span { open: None };
    }
    span_slow(kind, name)
}

#[cold]
fn span_slow(kind: SpanKind, name: &str) -> Span {
    let open = CTX.with(|c| {
        let mut guard = c.borrow_mut();
        let ctx = guard.as_mut()?;
        let span_id = ctx.next_span;
        ctx.next_span += 1;
        let parent = ctx.parent;
        ctx.parent = span_id;
        Some(OpenSpan {
            trace_id: ctx.trace_id,
            span_id,
            parent,
            kind,
            name: SpanName::new(name),
            a: 0,
            b: 0,
            start_nanos: ctx.buf.now_nanos(),
        })
    });
    Span { open }
}

impl Span {
    /// Whether this guard is actually recording (ambient context was
    /// installed when it was opened).
    pub fn is_recording(&self) -> bool {
        self.open.is_some()
    }

    /// Attach the kind-specific payload pair (see [`SpanKind`]). A no-op
    /// on an inert span.
    pub fn payload(&mut self, a: u64, b: u64) {
        if let Some(open) = &mut self.open {
            open.a = a;
            open.b = b;
        }
    }

    /// Replace the span's name. A no-op on an inert span — callers open
    /// the span with an empty name and rename under
    /// [`Span::is_recording`] when the name is expensive to compute
    /// (e.g. requires resolving an interned id to a string).
    pub fn rename(&mut self, name: &str) {
        if let Some(open) = &mut self.open {
            open.name = SpanName::new(name);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        CTX.with(|c| {
            let mut guard = c.borrow_mut();
            let Some(ctx) = guard.as_mut() else {
                return; // context torn down before the span closed
            };
            if ctx.trace_id != open.trace_id {
                return; // a new trace was installed over this span
            }
            ctx.parent = open.parent;
            let now = ctx.buf.now_nanos();
            ctx.buf.record(SpanRecord {
                trace_id: open.trace_id,
                span_id: open.span_id,
                parent: open.parent,
                kind: open.kind,
                name: open.name,
                a: open.a,
                b: open.b,
                start_nanos: open.start_nanos,
                dur_nanos: now.saturating_sub(open.start_nanos),
            });
        });
    }
}

// ---------------------------------------------------------------------
// Span-tree rendering
// ---------------------------------------------------------------------

/// Render a trace's spans (as returned by [`TraceBuffer::trace`]) as an
/// indented tree, one line per span: kind label, name, kind-specific
/// payload fields, and duration in microseconds. Returns an explanatory
/// line when `spans` is empty.
pub fn render_tree(trace_id: u64, spans: &[SpanRecord]) -> String {
    use std::fmt::Write as _;
    if spans.is_empty() {
        return format!("trace {trace_id}: no spans recorded");
    }
    let mut out = String::new();
    let total: u64 = spans
        .iter()
        .filter(|s| s.parent == 0)
        .map(|s| s.dur_nanos)
        .max()
        .unwrap_or(0);
    let _ = writeln!(
        out,
        "trace {trace_id} total={}µs spans={}",
        total / 1_000,
        spans.len()
    );
    // Children of each parent, in start order (spans is already sorted).
    let roots: Vec<usize> = (0..spans.len()).filter(|&i| spans[i].parent == 0).collect();
    let mut stack: Vec<(usize, usize)> = roots.into_iter().rev().map(|i| (i, 0)).collect();
    let mut emitted = 0usize;
    while let Some((i, depth)) = stack.pop() {
        let s = &spans[i];
        emitted += 1;
        let _ = write!(out, "{:indent$}{}", "", s.kind.label(), indent = depth * 2);
        if !s.name.as_str().is_empty() {
            let _ = write!(out, " {}", s.name);
        }
        match s.kind {
            SpanKind::Statement | SpanKind::Parse => {}
            SpanKind::LockWait => {
                let _ = write!(
                    out,
                    " txn={} mode={}",
                    s.a,
                    if s.b == 1 { "exclusive" } else { "shared" }
                );
            }
            SpanKind::Post => {
                let _ = write!(out, " anchor={} txn={}", s.a, s.b);
            }
            SpanKind::FsmAdvance => {
                let _ = write!(out, " from={} to={}", s.a, s.b);
            }
            SpanKind::Action => {}
            SpanKind::SystemTxn => {
                let _ = write!(out, " txn={}", s.a);
                if s.b != 0 {
                    let _ = write!(out, " depends_on={}", s.b);
                }
            }
            SpanKind::Commit => {
                let _ = write!(out, " txn={} lsn={}", s.a, s.b);
            }
        }
        let _ = writeln!(out, " {}µs", s.dur_nanos / 1_000);
        for j in (0..spans.len()).rev() {
            if spans[j].parent == s.span_id {
                stack.push((j, depth + 1));
            }
        }
    }
    // Spans whose parent was overwritten in the ring never get visited;
    // say so instead of silently dropping them.
    if emitted < spans.len() {
        let _ = writeln!(
            out,
            "({} spans orphaned by ring wrap)",
            spans.len() - emitted
        );
    }
    out.truncate(out.trim_end().len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_names_truncate_at_char_boundaries() {
        let s = SpanName::new("abc");
        assert_eq!(s.as_str(), "abc");
        let long = "x".repeat(40);
        assert_eq!(SpanName::new(&long).as_str().len(), SPAN_NAME_CAP);
        let multi = "ééééééééééééé"; // 2 bytes each; 23 is mid-char
        let t = SpanName::new(multi);
        assert!(t.as_str().len() <= SPAN_NAME_CAP);
        assert!(t.as_str().chars().all(|c| c == 'é'));
    }

    #[test]
    fn spans_are_inert_without_an_installed_context() {
        let mut s = span(SpanKind::Post, "Buy");
        assert!(!s.is_recording());
        s.payload(1, 2);
        drop(s);
        assert_eq!(current_ids(), (0, 0));
    }

    #[test]
    fn nesting_builds_a_parent_chain_and_restores_on_drop() {
        let buf = Arc::new(TraceBuffer::new());
        let id = next_trace_id();
        let guard = install(Arc::clone(&buf), id);
        let root = span(SpanKind::Statement, "call");
        assert!(root.is_recording());
        assert_eq!(current_ids(), (id, 1));
        {
            let _post = span(SpanKind::Post, "Buy");
            assert_eq!(current_ids(), (id, 2));
            {
                let mut fsm = span(SpanKind::FsmAdvance, "AutoRaiseLimit");
                fsm.payload(0, 1);
                assert_eq!(current_ids(), (id, 3));
            }
            assert_eq!(current_ids(), (id, 2));
        }
        assert_eq!(current_ids(), (id, 1));
        drop(root);
        drop(guard);
        assert_eq!(current_ids(), (0, 0));

        let spans = buf.trace(id);
        assert_eq!(spans.len(), 3);
        let root = &spans[0];
        assert_eq!(
            (root.kind, root.parent, root.span_id),
            (SpanKind::Statement, 0, 1)
        );
        let post = &spans[1];
        assert_eq!((post.kind, post.parent), (SpanKind::Post, 1));
        let fsm = &spans[2];
        assert_eq!(
            (fsm.kind, fsm.parent, fsm.a, fsm.b),
            (SpanKind::FsmAdvance, 2, 0, 1)
        );
        assert_eq!(fsm.name.as_str(), "AutoRaiseLimit");
    }

    #[test]
    fn traces_are_isolated_by_id_in_one_buffer() {
        let buf = Arc::new(TraceBuffer::new());
        let (a, b) = (next_trace_id(), next_trace_id());
        {
            let _g = install(Arc::clone(&buf), a);
            let _s = span(SpanKind::Statement, "new");
        }
        {
            let _g = install(Arc::clone(&buf), b);
            let _s = span(SpanKind::Statement, "call");
            let _p = span(SpanKind::Post, "Buy");
        }
        assert_eq!(buf.trace(a).len(), 1);
        assert_eq!(buf.trace(b).len(), 2);
        assert_eq!(buf.trace(a)[0].name.as_str(), "new");
    }

    #[test]
    fn ring_wrap_keeps_only_the_newest_spans() {
        let buf = Arc::new(TraceBuffer::with_capacity(4));
        let id = next_trace_id();
        let _g = install(Arc::clone(&buf), id);
        for i in 0..10u64 {
            let mut s = span(SpanKind::Post, "E");
            s.payload(i, 0);
        }
        let spans = buf.trace(id);
        assert_eq!(spans.len(), 4);
        assert_eq!(
            spans.iter().map(|s| s.a).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn concurrent_writers_never_surface_torn_records() {
        // Hammer one buffer from several threads while snapshotting; the
        // seqlock must only ever surface internally-consistent records
        // (payload pair a == !b by construction).
        let buf = Arc::new(TraceBuffer::with_capacity(8));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..3)
            .map(|t| {
                let buf = Arc::clone(&buf);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let v = (t as u64) << 32 | i;
                        buf.record(SpanRecord {
                            trace_id: 1,
                            span_id: v,
                            parent: 0,
                            kind: SpanKind::Post,
                            name: SpanName::new("w"),
                            a: v,
                            b: !v,
                            start_nanos: 0,
                            dur_nanos: 0,
                        });
                        i += 1;
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            for rec in buf.snapshot() {
                assert_eq!(rec.b, !rec.a, "torn record surfaced");
            }
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    fn render_tree_shows_the_cascade_with_payloads() {
        let buf = Arc::new(TraceBuffer::new());
        let id = next_trace_id();
        {
            let _g = install(Arc::clone(&buf), id);
            let _root = span(SpanKind::Statement, "call");
            {
                let mut post = span(SpanKind::Post, "PayBill");
                post.payload(42, 7);
                let mut fsm = span(SpanKind::FsmAdvance, "AutoRaiseLimit");
                fsm.payload(1, 2);
            }
            let mut commit = span(SpanKind::Commit, "");
            commit.payload(7, 99);
        }
        let tree = render_tree(id, &buf.trace(id));
        assert!(tree.contains("statement call"), "{tree}");
        assert!(tree.contains("  post PayBill anchor=42 txn=7"), "{tree}");
        assert!(
            tree.contains("    fsm_advance AutoRaiseLimit from=1 to=2"),
            "{tree}"
        );
        assert!(tree.contains("  commit txn=7 lsn=99"), "{tree}");
    }

    #[test]
    fn render_tree_reports_an_empty_trace() {
        assert!(render_tree(5, &[]).contains("no spans"));
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
