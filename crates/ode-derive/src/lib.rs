//! `#[derive(OdeClass)]` — persistent-class boilerplate, generated.
//!
//! O++ classes became persistent just by being used with `pnew`; the
//! compiler generated everything else. This derive is the Rust analogue:
//! it implements the byte codec (`Encode`/`Decode`, field by field in
//! declaration order — the explicit, stable layout §3's design goal 5
//! cares about) and `OdeObject` (with `CLASS` defaulting to the struct
//! name) for a plain struct:
//!
//! ```ignore
//! #[derive(OdeClass)]
//! struct CredCard {
//!     cred_lim: f32,
//!     curr_bal: f32,
//! }
//! ```
//!
//! Attributes:
//! * `#[ode(class = "Name")]` on the struct — override the class name
//!   (e.g. to match a base-class registration).
//! * `#[ode(crate = path)]` on the struct — path to the `ode-core` crate
//!   (defaults to `::ode_core`; pass `ode::core` when only the facade
//!   crate is a dependency).
//!
//! Field types must themselves implement `Encode`/`Decode` (all numeric
//! primitives, `bool`, `String`, `Vec<T>`, `Option<T>`, tuples,
//! `PersistentPtr<T>`, and nested derived classes do).
//!
//! The build environment has no crates.io access, so this macro is
//! written against the compiler's built-in `proc_macro` API alone — a
//! small hand-rolled token walk instead of `syn`/`quote`. It supports
//! exactly what the codec layout rules allow: non-generic structs with
//! named fields.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

/// Render a token preserving joint punctuation (`::`, `->`), so the
/// captured source text reparses identically.
fn push_token(out: &mut String, tt: &TokenTree) {
    match tt {
        TokenTree::Punct(p) => {
            out.push(p.as_char());
            if p.spacing() == Spacing::Alone {
                out.push(' ');
            }
        }
        other => {
            out.push_str(&other.to_string());
            out.push(' ');
        }
    }
}

/// Derive `Encode`, `Decode`, and `OdeObject` for a named-field struct.
#[proc_macro_derive(OdeClass, attributes(ode))]
pub fn derive_ode_class(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(src) => src.parse().expect("generated impls parse"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

fn expand(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;

    let mut class_name: Option<String> = None;
    let mut krate = "::ode_core".to_string();

    // Outer attributes: `#[ode(...)]` is ours; skip everything else
    // (doc comments, other derives' helpers).
    while matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        let Some(TokenTree::Group(g)) = tokens.get(pos + 1) else {
            return Err("malformed attribute".into());
        };
        let attr: Vec<TokenTree> = g.stream().into_iter().collect();
        if matches!(&attr.first(), Some(TokenTree::Ident(i)) if i.to_string() == "ode") {
            let Some(TokenTree::Group(args)) = attr.get(1) else {
                return Err("expected `#[ode(...)]`".into());
            };
            parse_ode_attr(args.stream(), &mut class_name, &mut krate)?;
        }
        pos += 2;
    }

    // Visibility, then the `struct` keyword.
    loop {
        match tokens.get(pos) {
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                pos += 1;
                // `pub(crate)` and friends carry a parenthesised scope.
                if matches!(&tokens.get(pos), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    pos += 1;
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "struct" => {
                pos += 1;
                break;
            }
            _ => return Err("OdeClass can only be derived for structs".into()),
        }
    }

    let Some(TokenTree::Ident(ident)) = tokens.get(pos) else {
        return Err("expected struct name".into());
    };
    let ident = ident.to_string();
    pos += 1;

    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err("OdeClass does not support generic structs (the stored layout must be a single concrete field sequence)".into());
    }

    let Some(TokenTree::Group(body)) = tokens.get(pos) else {
        return Err("OdeClass requires named fields (the field order is the stored layout)".into());
    };
    if body.delimiter() != Delimiter::Brace {
        return Err("OdeClass requires named fields (the field order is the stored layout)".into());
    }

    let fields = parse_named_fields(body.stream())?;
    if fields.is_empty() {
        return Err("OdeClass requires at least one field".into());
    }

    let class_name = class_name.unwrap_or_else(|| ident.clone());

    let mut encode_body = String::new();
    let mut decode_body = String::new();
    for (name, ty) in &fields {
        encode_body.push_str(&format!("{krate}::Encode::encode(&self.{name}, buf);\n"));
        decode_body.push_str(&format!(
            "{name}: <{ty} as {krate}::Decode>::decode(buf)?,\n"
        ));
    }

    Ok(format!(
        "impl {krate}::Encode for {ident} {{\n\
             fn encode(&self, buf: &mut {krate}::bytes::BytesMut) {{\n\
                 {encode_body}\
             }}\n\
         }}\n\
         impl {krate}::Decode for {ident} {{\n\
             fn decode(\n\
                 buf: &mut &[u8],\n\
             ) -> ::std::result::Result<Self, {krate}::StorageError> {{\n\
                 ::std::result::Result::Ok({ident} {{\n\
                     {decode_body}\
                 }})\n\
             }}\n\
         }}\n\
         impl {krate}::OdeObject for {ident} {{\n\
             const CLASS: &'static str = {class_name:?};\n\
         }}\n"
    ))
}

/// Parse `class = "Name"` / `crate = some::path` inside `#[ode(...)]`.
fn parse_ode_attr(
    stream: TokenStream,
    class_name: &mut Option<String>,
    krate: &mut String,
) -> Result<(), String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0usize;
    while pos < tokens.len() {
        let Some(TokenTree::Ident(key)) = tokens.get(pos) else {
            return Err("expected `class = \"…\"` or `crate = path`".into());
        };
        let key = key.to_string();
        if !matches!(&tokens.get(pos + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err("expected `class = \"…\"` or `crate = path`".into());
        }
        pos += 2;
        match key.as_str() {
            "class" => {
                let Some(TokenTree::Literal(lit)) = tokens.get(pos) else {
                    return Err("`class` expects a string literal".into());
                };
                let text = lit.to_string();
                let stripped = text
                    .strip_prefix('"')
                    .and_then(|t| t.strip_suffix('"'))
                    .ok_or_else(|| "`class` expects a plain string literal".to_string())?;
                *class_name = Some(stripped.to_string());
                pos += 1;
            }
            "crate" => {
                // Consume path tokens up to the next top-level comma.
                let mut path = String::new();
                while pos < tokens.len() {
                    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                        break;
                    }
                    push_token(&mut path, &tokens[pos]);
                    pos += 1;
                }
                let path = path.trim().to_string();
                if path.is_empty() {
                    return Err("`crate` expects a path".into());
                }
                *krate = path;
            }
            other => {
                return Err(format!(
                    "unknown ode attribute `{other}`: expected `class = \"…\"` or `crate = path`"
                ));
            }
        }
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    Ok(())
}

/// Parse `name: Type, …` from a brace-delimited struct body, skipping
/// field attributes and visibility. Types are captured as source text up
/// to the next comma at bracket depth zero.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<(String, String)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0usize;

    while pos < tokens.len() {
        // Field attributes (doc comments included).
        while matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            pos += 2;
        }
        // Visibility.
        if matches!(&tokens.get(pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            pos += 1;
            if matches!(&tokens.get(pos), Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Parenthesis)
            {
                pos += 1;
            }
        }
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            return Err(
                "OdeClass requires named fields (the field order is the stored layout)".into(),
            );
        };
        let name = name.to_string();
        pos += 1;
        if !matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        pos += 1;

        // Type: tokens until a comma at angle-bracket depth zero. `<` /
        // `>` as shift operators cannot appear in type position, so a
        // simple depth counter is enough.
        let mut depth: i32 = 0;
        let mut ty = String::new();
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                _ => {}
            }
            push_token(&mut ty, &tokens[pos]);
            pos += 1;
        }
        if ty.trim().is_empty() {
            return Err(format!("field `{name}` has an empty type"));
        }
        fields.push((name, ty.trim().to_string()));
        // The separating comma, if present.
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    Ok(fields)
}
