//! `#[derive(OdeClass)]` — persistent-class boilerplate, generated.
//!
//! O++ classes became persistent just by being used with `pnew`; the
//! compiler generated everything else. This derive is the Rust analogue:
//! it implements the byte codec (`Encode`/`Decode`, field by field in
//! declaration order — the explicit, stable layout §3's design goal 5
//! cares about) and `OdeObject` (with `CLASS` defaulting to the struct
//! name) for a plain struct:
//!
//! ```ignore
//! #[derive(OdeClass)]
//! struct CredCard {
//!     cred_lim: f32,
//!     curr_bal: f32,
//! }
//! ```
//!
//! Attributes:
//! * `#[ode(class = "Name")]` on the struct — override the class name
//!   (e.g. to match a base-class registration).
//! * `#[ode(crate = path)]` on the struct — path to the `ode-core` crate
//!   (defaults to `::ode_core`; pass `ode::core` when only the facade
//!   crate is a dependency).
//!
//! Field types must themselves implement `Encode`/`Decode` (all numeric
//! primitives, `bool`, `String`, `Vec<T>`, `Option<T>`, tuples,
//! `PersistentPtr<T>`, and nested derived classes do).

use proc_macro::TokenStream;
use quote::quote;
use syn::{parse_macro_input, Data, DeriveInput, Fields};

/// Derive `Encode`, `Decode`, and `OdeObject` for a named-field struct.
#[proc_macro_derive(OdeClass, attributes(ode))]
pub fn derive_ode_class(input: TokenStream) -> TokenStream {
    let input = parse_macro_input!(input as DeriveInput);
    match expand(input) {
        Ok(ts) => ts.into(),
        Err(e) => e.to_compile_error().into(),
    }
}

fn expand(input: DeriveInput) -> syn::Result<proc_macro2::TokenStream> {
    let ident = input.ident.clone();
    let mut class_name = ident.to_string();
    let mut krate: syn::Path = syn::parse_quote!(::ode_core);

    for attr in &input.attrs {
        if !attr.path().is_ident("ode") {
            continue;
        }
        attr.parse_nested_meta(|meta| {
            if meta.path.is_ident("class") {
                let lit: syn::LitStr = meta.value()?.parse()?;
                class_name = lit.value();
                Ok(())
            } else if meta.path.is_ident("crate") {
                krate = meta.value()?.parse()?;
                Ok(())
            } else {
                Err(meta.error("expected `class = \"…\"` or `crate = path`"))
            }
        })?;
    }

    let Data::Struct(data) = &input.data else {
        return Err(syn::Error::new_spanned(
            &input.ident,
            "OdeClass can only be derived for structs",
        ));
    };
    let Fields::Named(fields) = &data.fields else {
        return Err(syn::Error::new_spanned(
            &input.ident,
            "OdeClass requires named fields (the field order is the stored layout)",
        ));
    };

    let names: Vec<&syn::Ident> = fields
        .named
        .iter()
        .map(|f| f.ident.as_ref().expect("named field"))
        .collect();
    let types: Vec<&syn::Type> = fields.named.iter().map(|f| &f.ty).collect();

    let (impl_generics, ty_generics, where_clause) = input.generics.split_for_impl();

    Ok(quote! {
        impl #impl_generics #krate::Encode for #ident #ty_generics #where_clause {
            fn encode(&self, buf: &mut #krate::bytes::BytesMut) {
                #( #krate::Encode::encode(&self.#names, buf); )*
            }
        }

        impl #impl_generics #krate::Decode for #ident #ty_generics #where_clause {
            fn decode(
                buf: &mut &[u8],
            ) -> ::std::result::Result<Self, #krate::StorageError> {
                ::std::result::Result::Ok(#ident {
                    #( #names: <#types as #krate::Decode>::decode(buf)?, )*
                })
            }
        }

        impl #impl_generics #krate::OdeObject for #ident #ty_generics #where_clause {
            const CLASS: &'static str = #class_name;
        }
    })
}
