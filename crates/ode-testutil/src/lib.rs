//! Minimal test support utilities (kept dependency-free).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A temporary directory that is removed on drop.
///
/// Each instance gets a unique path under the system temp dir, namespaced by
/// process id so parallel test binaries never collide.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh empty directory with `prefix` in its name.
    pub fn new(prefix: &str) -> TempDir {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("ode-{}-{}-{}", prefix, std::process::id(), n));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A file path inside the directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// First payload byte of an `ode-server` protocol-v2 batch frame
/// (mirrored here because this crate is intentionally dependency-free).
pub const BATCH_MAGIC: u8 = 0x02;

/// A blocking client for the `ode-server` wire protocol: length-prefixed
/// (`u32` little-endian) frames, `AUTH <token>` handshake, `OK`/`ERR`
/// replies. Protocol v1 sends one statement per frame
/// ([`WireClient::exec`]); protocol v2 sends N statements per frame
/// ([`WireClient::exec_batch`]) and can keep several frames in flight
/// ([`WireClient::pipeline_batches`]).
///
/// Lives here (std-only, no dependency on the server crate) so tests,
/// examples, and benches across the workspace can all drive a server.
/// Frame encode and decode go through per-client scratch buffers, so
/// steady-state round trips allocate nothing inside the client.
pub struct WireClient {
    stream: std::net::TcpStream,
    /// Outbound frame scratch: length prefix + payload, one `write_all`.
    wbuf: Vec<u8>,
    /// Inbound payload scratch.
    rbuf: Vec<u8>,
}

impl WireClient {
    /// Connect and authenticate. Errors on refused connection or bad
    /// token.
    pub fn connect(addr: &str, token: &str) -> std::io::Result<WireClient> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = WireClient {
            stream,
            wbuf: Vec::new(),
            rbuf: Vec::new(),
        };
        let reply = client.send(&format!("AUTH {token}"))?;
        if reply != "OK" {
            return Err(std::io::Error::new(
                std::io::ErrorKind::PermissionDenied,
                reply,
            ));
        }
        Ok(client)
    }

    /// Write one length-prefixed text frame from the encode scratch.
    fn write_text_frame(&mut self, payload: &str) -> std::io::Result<()> {
        use std::io::Write;
        self.wbuf.clear();
        self.wbuf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.wbuf.extend_from_slice(payload.as_bytes());
        self.stream.write_all(&self.wbuf)?;
        self.stream.flush()
    }

    /// Read one length-prefixed frame payload into the decode scratch.
    fn read_frame_into_scratch(&mut self) -> std::io::Result<()> {
        use std::io::Read;
        let mut len = [0u8; 4];
        self.stream.read_exact(&mut len)?;
        self.rbuf.resize(u32::from_le_bytes(len) as usize, 0);
        self.stream.read_exact(&mut self.rbuf)?;
        Ok(())
    }

    /// The decode scratch as UTF-8 (replies are text in both protocols'
    /// per-statement grammar).
    fn scratch_str(&self) -> std::io::Result<&str> {
        std::str::from_utf8(&self.rbuf)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Send one frame and read the reply frame.
    pub fn send(&mut self, payload: &str) -> std::io::Result<String> {
        self.write_text_frame(payload)?;
        self.read_frame_into_scratch()?;
        self.scratch_str().map(str::to_string)
    }

    /// Execute a statement, panicking on an `ERR` reply; returns the
    /// payload (empty for plain `OK`).
    pub fn exec(&mut self, stmt: &str) -> String {
        let reply = self.send(stmt).expect("wire I/O");
        match reply.as_str() {
            "OK" => String::new(),
            _ => match reply
                .strip_prefix("OK ")
                .or_else(|| reply.strip_prefix("OK\n"))
            {
                Some(payload) => payload.to_string(),
                None => panic!("statement {stmt:?} failed: {reply}"),
            },
        }
    }

    /// Execute a statement, returning `Err(message)` on an `ERR` reply.
    pub fn try_exec(&mut self, stmt: &str) -> Result<String, String> {
        let reply = self.send(stmt).expect("wire I/O");
        match reply.as_str() {
            "OK" => Ok(String::new()),
            _ => match reply
                .strip_prefix("OK ")
                .or_else(|| reply.strip_prefix("OK\n"))
            {
                Some(payload) => Ok(payload.to_string()),
                None => Err(reply
                    .strip_prefix("ERR ")
                    .unwrap_or(reply.as_str())
                    .to_string()),
            },
        }
    }

    /// [`WireClient::exec`] without the per-call allocations: the reply
    /// payload is written into `out` (cleared first), so steady-state
    /// round trips reuse the client scratch buffers and `out`'s capacity.
    pub fn exec_into(&mut self, stmt: &str, out: &mut String) -> Result<(), String> {
        out.clear();
        self.write_text_frame(stmt).map_err(|e| e.to_string())?;
        self.read_frame_into_scratch().map_err(|e| e.to_string())?;
        let reply = self.scratch_str().map_err(|e| e.to_string())?;
        if reply == "OK" {
            return Ok(());
        }
        match reply
            .strip_prefix("OK ")
            .or_else(|| reply.strip_prefix("OK\n"))
        {
            Some(payload) => {
                out.push_str(payload);
                Ok(())
            }
            None => Err(reply.strip_prefix("ERR ").unwrap_or(reply).to_string()),
        }
    }

    /// Send `stmts` as one protocol-v2 batch frame without reading the
    /// reply — the send half of pipelining. Pair each call with one
    /// [`WireClient::read_batch_reply_into`].
    pub fn send_batch(&mut self, stmts: &[&str], abort_on_error: bool) -> std::io::Result<()> {
        use std::io::Write;
        self.wbuf.clear();
        self.wbuf.extend_from_slice(&[0, 0, 0, 0]); // frame length, patched below
        self.wbuf.push(BATCH_MAGIC);
        self.wbuf.push(u8::from(abort_on_error));
        self.wbuf
            .extend_from_slice(&(stmts.len() as u32).to_le_bytes());
        for stmt in stmts {
            self.wbuf
                .extend_from_slice(&(stmt.len() as u32).to_le_bytes());
            self.wbuf.extend_from_slice(stmt.as_bytes());
        }
        let payload_len = (self.wbuf.len() - 4) as u32;
        self.wbuf[..4].copy_from_slice(&payload_len.to_le_bytes());
        self.stream.write_all(&self.wbuf)?;
        self.stream.flush()
    }

    /// Read one batch reply frame, decoding the per-statement replies
    /// into `replies` (reusing its `String`s' capacity). Returns the
    /// number of replies.
    pub fn read_batch_reply_into(&mut self, replies: &mut Vec<String>) -> std::io::Result<usize> {
        fn bad(msg: String) -> std::io::Error {
            std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
        }
        self.read_frame_into_scratch()?;
        let buf = &self.rbuf;
        if buf.first() != Some(&BATCH_MAGIC) {
            // A plain-text reply to a batch frame: an old server, or one
            // with pipelining disabled. Surface the message.
            return Err(bad(format!(
                "expected batch reply, got: {}",
                String::from_utf8_lossy(buf)
            )));
        }
        if buf.len() < 5 {
            return Err(bad("batch reply header truncated".into()));
        }
        let count = u32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
        while replies.len() < count {
            replies.push(String::new());
        }
        replies.truncate(count);
        let mut rest = &buf[5..];
        for reply in replies.iter_mut() {
            if rest.len() < 4 {
                return Err(bad("batch reply entry truncated".into()));
            }
            let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
            rest = &rest[4..];
            if rest.len() < len {
                return Err(bad("batch reply entry truncated".into()));
            }
            let text = std::str::from_utf8(&rest[..len]).map_err(|e| bad(e.to_string()))?;
            reply.clear();
            reply.push_str(text);
            rest = &rest[len..];
        }
        if !rest.is_empty() {
            return Err(bad("trailing bytes after batch reply".into()));
        }
        Ok(count)
    }

    /// Send `stmts` in one batch frame and return the per-statement
    /// replies (raw `OK …`/`ERR …` lines, in statement order).
    pub fn exec_batch(
        &mut self,
        stmts: &[&str],
        abort_on_error: bool,
    ) -> std::io::Result<Vec<String>> {
        let mut replies = Vec::new();
        self.send_batch(stmts, abort_on_error)?;
        self.read_batch_reply_into(&mut replies)?;
        Ok(replies)
    }

    /// Pipelined send-ahead: stream `frames` keeping up to `window`
    /// batch frames in flight, invoking `on_replies` with each frame's
    /// replies in order. `window == 1` degenerates to [`Self::exec_batch`]
    /// in a loop.
    pub fn pipeline_batches<'a, I>(
        &mut self,
        frames: I,
        window: usize,
        abort_on_error: bool,
        mut on_replies: impl FnMut(&[String]),
    ) -> std::io::Result<()>
    where
        I: IntoIterator<Item = &'a [&'a str]>,
    {
        let window = window.max(1);
        let mut in_flight = 0usize;
        let mut replies = Vec::new();
        for frame in frames {
            self.send_batch(frame, abort_on_error)?;
            in_flight += 1;
            if in_flight == window {
                self.read_batch_reply_into(&mut replies)?;
                on_replies(&replies);
                in_flight -= 1;
            }
        }
        while in_flight > 0 {
            self.read_batch_reply_into(&mut replies)?;
            on_replies(&replies);
            in_flight -= 1;
        }
        Ok(())
    }

    /// Run `body` as a transaction, retrying the whole block when it is
    /// torn down by a deadlock or lock timeout — the client-side analogue
    /// of `Database::with_txn_retry`. `body` returns `Ok(Some(value))` to
    /// commit, `Ok(None)` to abort cleanly, `Err` to bubble a real error.
    pub fn with_txn_retry<R>(
        &mut self,
        max_attempts: usize,
        mut body: impl FnMut(&mut WireClient) -> Result<Option<R>, String>,
    ) -> Result<Option<R>, String> {
        for attempt in 0.. {
            self.try_exec("BEGIN")?;
            match body(self) {
                Ok(Some(value)) => match self.try_exec("COMMIT") {
                    Ok(_) => return Ok(Some(value)),
                    Err(e) if retryable(&e) && attempt + 1 < max_attempts => continue,
                    Err(e) => return Err(e),
                },
                Ok(None) => {
                    self.try_exec("ABORT").ok();
                    return Ok(None);
                }
                // A failed statement already aborted the transaction.
                Err(e) if retryable(&e) && attempt + 1 < max_attempts => continue,
                Err(e) => return Err(e),
            }
        }
        unreachable!()
    }
}

/// Whether a wire error message names a transient conflict worth
/// retrying.
fn retryable(message: &str) -> bool {
    message.contains("deadlock") || message.contains("lock timeout")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tempdir_creates_and_removes() {
        let kept;
        {
            let d = TempDir::new("t");
            kept = d.path().to_path_buf();
            assert!(kept.is_dir());
            std::fs::write(d.file("x"), b"y").unwrap();
        }
        assert!(!kept.exists());
    }

    #[test]
    fn tempdirs_are_distinct() {
        let a = TempDir::new("t");
        let b = TempDir::new("t");
        assert_ne!(a.path(), b.path());
    }
}
