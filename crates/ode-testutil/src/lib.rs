//! Minimal test support utilities (kept dependency-free).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A temporary directory that is removed on drop.
///
/// Each instance gets a unique path under the system temp dir, namespaced by
/// process id so parallel test binaries never collide.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh empty directory with `prefix` in its name.
    pub fn new(prefix: &str) -> TempDir {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("ode-{}-{}-{}", prefix, std::process::id(), n));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A file path inside the directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// A blocking client for the `ode-server` wire protocol: length-prefixed
/// (`u32` little-endian) UTF-8 frames, `AUTH <token>` handshake, one
/// statement per frame, `OK`/`ERR` replies.
///
/// Lives here (std-only, no dependency on the server crate) so tests,
/// examples, and benches across the workspace can all drive a server.
pub struct WireClient {
    stream: std::net::TcpStream,
}

impl WireClient {
    /// Connect and authenticate. Errors on refused connection or bad
    /// token.
    pub fn connect(addr: &str, token: &str) -> std::io::Result<WireClient> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = WireClient { stream };
        let reply = client.send(&format!("AUTH {token}"))?;
        if reply != "OK" {
            return Err(std::io::Error::new(
                std::io::ErrorKind::PermissionDenied,
                reply,
            ));
        }
        Ok(client)
    }

    /// Send one frame and read the reply frame.
    pub fn send(&mut self, payload: &str) -> std::io::Result<String> {
        use std::io::{Read, Write};
        self.stream
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.stream.write_all(payload.as_bytes())?;
        self.stream.flush()?;
        let mut len = [0u8; 4];
        self.stream.read_exact(&mut len)?;
        let mut buf = vec![0u8; u32::from_le_bytes(len) as usize];
        self.stream.read_exact(&mut buf)?;
        String::from_utf8(buf).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Execute a statement, panicking on an `ERR` reply; returns the
    /// payload (empty for plain `OK`).
    pub fn exec(&mut self, stmt: &str) -> String {
        let reply = self.send(stmt).expect("wire I/O");
        match reply.as_str() {
            "OK" => String::new(),
            _ => match reply
                .strip_prefix("OK ")
                .or_else(|| reply.strip_prefix("OK\n"))
            {
                Some(payload) => payload.to_string(),
                None => panic!("statement {stmt:?} failed: {reply}"),
            },
        }
    }

    /// Execute a statement, returning `Err(message)` on an `ERR` reply.
    pub fn try_exec(&mut self, stmt: &str) -> Result<String, String> {
        let reply = self.send(stmt).expect("wire I/O");
        match reply.as_str() {
            "OK" => Ok(String::new()),
            _ => match reply
                .strip_prefix("OK ")
                .or_else(|| reply.strip_prefix("OK\n"))
            {
                Some(payload) => Ok(payload.to_string()),
                None => Err(reply
                    .strip_prefix("ERR ")
                    .unwrap_or(reply.as_str())
                    .to_string()),
            },
        }
    }

    /// Run `body` as a transaction, retrying the whole block when it is
    /// torn down by a deadlock or lock timeout — the client-side analogue
    /// of `Database::with_txn_retry`. `body` returns `Ok(Some(value))` to
    /// commit, `Ok(None)` to abort cleanly, `Err` to bubble a real error.
    pub fn with_txn_retry<R>(
        &mut self,
        max_attempts: usize,
        mut body: impl FnMut(&mut WireClient) -> Result<Option<R>, String>,
    ) -> Result<Option<R>, String> {
        for attempt in 0.. {
            self.try_exec("BEGIN")?;
            match body(self) {
                Ok(Some(value)) => match self.try_exec("COMMIT") {
                    Ok(_) => return Ok(Some(value)),
                    Err(e) if retryable(&e) && attempt + 1 < max_attempts => continue,
                    Err(e) => return Err(e),
                },
                Ok(None) => {
                    self.try_exec("ABORT").ok();
                    return Ok(None);
                }
                // A failed statement already aborted the transaction.
                Err(e) if retryable(&e) && attempt + 1 < max_attempts => continue,
                Err(e) => return Err(e),
            }
        }
        unreachable!()
    }
}

/// Whether a wire error message names a transient conflict worth
/// retrying.
fn retryable(message: &str) -> bool {
    message.contains("deadlock") || message.contains("lock timeout")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tempdir_creates_and_removes() {
        let kept;
        {
            let d = TempDir::new("t");
            kept = d.path().to_path_buf();
            assert!(kept.is_dir());
            std::fs::write(d.file("x"), b"y").unwrap();
        }
        assert!(!kept.exists());
    }

    #[test]
    fn tempdirs_are_distinct() {
        let a = TempDir::new("t");
        let b = TempDir::new("t");
        assert_ne!(a.path(), b.path());
    }
}
