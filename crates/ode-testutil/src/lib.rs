//! Minimal test support utilities (kept dependency-free).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A temporary directory that is removed on drop.
///
/// Each instance gets a unique path under the system temp dir, namespaced by
/// process id so parallel test binaries never collide.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh empty directory with `prefix` in its name.
    pub fn new(prefix: &str) -> TempDir {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("ode-{}-{}-{}", prefix, std::process::id(), n));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A file path inside the directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tempdir_creates_and_removes() {
        let kept;
        {
            let d = TempDir::new("t");
            kept = d.path().to_path_buf();
            assert!(kept.is_dir());
            std::fs::write(d.file("x"), b"y").unwrap();
        }
        assert!(!kept.exists());
    }

    #[test]
    fn tempdirs_are_distinct() {
        let a = TempDir::new("t");
        let b = TempDir::new("t");
        assert_ne!(a.path(), b.path());
    }
}
